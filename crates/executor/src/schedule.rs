//! The engine-global multi-query morsel scheduler.
//!
//! Before the engine-global refactor the worker pool belonged to a
//! single pipeline run: threads were spawned per query and died with
//! it. Here the pool belongs to a persistent [`Scheduler`] — the
//! database engine's one worker pool — and *queries* come and go:
//! [`Scheduler::submit`] plans a [`ParallelPipeline`] into an
//! `ActiveQuery` (a self-contained phase state machine), admission
//! caps how many run at once (FIFO beyond `max_queries`), and every
//! worker pulls morsels from whichever admitted query has work,
//! round-robin offset by worker index so no query starves.
//!
//! **What is shared and what is per-query.** The storage engine
//! (buffer pool, disk-arm tracker, virtual clock) is engine-global:
//! concurrent queries contend for pool frames and perturb each other's
//! seq/random classification exactly as concurrent backends do on one
//! disk. Everything that determines *results* is per-query: the morsel
//! source and its lock, the sequence numbers, the build tables, the
//! sink/merge state. That split keeps the core invariant intact —
//! result rows are byte-identical to the serial driver regardless of
//! worker count, interleaving, or what else is running — while clock
//! and I/O counters stay byte-identical to serial only when the query
//! runs alone (concurrent queries genuinely share the arm and the
//! pool, so their accounting legitimately interleaves).
//!
//! **Per-query attribution** rides on the thread-local tap
//! ([`smooth_storage::tap_mark`]): all charged page traffic happens on
//! the claiming worker's thread inside the query's source lock, so
//! bracketing each unit of work with a mark/delta pair attributes
//! pages, requests, hits and tuple flow to exactly one query even
//! under full concurrency. Workers also measure the wall-clock time
//! they spend blocked acquiring each query's source lock
//! ([`ScanStatistics::lock_wait_ns`] — informational; the *modeled*
//! contention lives in [`crate::ScalingLedger`]).
//!
//! **Work-stealing morsel queues.** Each `ActiveQuery` owns one
//! pending-morsel deque per scheduler worker. A worker visiting a
//! query runs a three-rung ladder (`try_work`): pop the front of its
//! own deque; else take the source lock once and claim a *chunk* of up
//! to `k` morsels (`claim_size` in [`crate::parallel`] — fixed by
//! `SMOOTH_CLAIM_MORSELS`, or guided by the source's remaining-work
//! hint), charging their pull I/O in exact serial seq order under the
//! lock and queueing them locally; else steal the *back* of the
//! longest peer deque (ties to the lowest index — deterministic victim
//! selection). Queued morsels count in `inflight` from the moment they
//! are claimed, so a phase cannot finalize with queued work, and
//! failed/cancelled queries drain their queues (at claim) and discard
//! per item (at process). Execution charges nothing for a steal; the
//! scaling model prices steals with a locality penalty
//! ([`crate::parallel::STEAL_PENALTY_PERMILLE`]). See
//! `docs/scheduler_v2.md`.
//!
//! **The `ActiveQuery` phase state machine.** A query moves through
//! `Build(0) → … → Build(n-1) → Probe → finalized`, tracked by the
//! `SrcState` under the source lock (which phase the current decoder
//! feeds, the claim seq, and the end-of-source latch). Build sources
//! open in tranches ([`BuildSpec::open_at`] = how many builds must
//! complete first, [`BuildSpec::open_order`] = the serial driver's
//! open sequence): admission opens the probe source (serial open
//! order), parks it, and opens tranche 0; when the last in-flight
//! morsel of build `i` lands, the finalizing worker merges the
//! per-worker partial builds — the charge-free partition merge of
//! [`crate::JoinBuildTable`], accounting-identical to the serial
//! merge — finalizes any *nested* probe stages inside completed
//! builds (bushy trees: a hash join on the build side of a hash
//! join), resolves later builds' stages against the now-installed
//! tables, opens tranche `i + 1`, and installs the next phase's
//! source. After the last build the parked probe source is installed
//! and the probe phase begins. `ordered:` heap scans run as a normal
//! chunked probe phase over the partitioned heap source with a
//! charged stable sort at the sink ([`SinkSpec::Sort`]) — rows and
//! charges byte-identical to the serial Sort-over-scan plan.
//!
//! **Slot pools and the `(seq, idx)` MIN rule.** Worker-side partial
//! state (build partials, exact-merge aggregation partials) lives in
//! per-query *slot pools*: a worker pops a slot, folds its morsel,
//! and pushes the slot back — slots are not pinned to threads, so one
//! slot can fold seq 3 before seq 2. Worker-count invariance of the
//! merges (established by the single-query drivers) makes any
//! slot↔morsel assignment byte-identical; for grouped aggregates that
//! invariance rests on the `(seq, idx)` MIN ordering invariant: every
//! fold minimizes a group's first-seen position `(morsel seq, row
//! idx)` on *every* row, and the merge minimizes across partials, so
//! the recorded position equals the global first occurrence — hence a
//! deterministic group order — regardless of fold order, chunk size,
//! steals, or worker count.

use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

use smooth_storage::{tap_mark, FileId, InjectedPanic, ScanStatistics, Storage};
use smooth_types::{ColumnBatch, Error, Result, Row, Schema};

use crate::expr::Predicate;
use crate::join::{JoinBuildPartial, JoinBuildTable, PartialPartition};
use crate::parallel::{
    build_batch, open_source, process_item, resolve_stages, source_claim, staged_schema, BuildSpec,
    HeapDecoder, Morsel, ParallelPipeline, ParallelSource, PartialAgg, ProbeTable, SinkSpec,
    SourceCore, SourceItem, Stage, StageSpec,
};
use crate::sort::SortKey;
use crate::{AggFunc, JoinType};

/// A completed query: its result plus the per-query scan statistics
/// accumulated from the worker-side tap deltas.
///
/// Collect sinks stay *columnar* — the ordered morsels land in
/// `batches` and no `Row` materializes inside the scheduler; aggregate
/// and sort sinks produce `rows` (their merge/sort suffix is row-wise
/// by construction). Exactly one of the two is non-empty. Call
/// [`QueryOutput::into_rows`] to materialize at the user-facing
/// boundary.
#[derive(Debug)]
pub struct QueryOutput {
    /// Columnar result batches (Collect sinks), in serial morsel order.
    pub batches: Vec<ColumnBatch>,
    /// Row results (aggregate / sort sinks), byte-identical to the
    /// serial driver's.
    pub rows: Vec<Row>,
    /// Per-query scan/flow counters (`rows_total` is stamped by the
    /// planner, which knows catalog cardinalities).
    pub stats: ScanStatistics,
}

impl QueryOutput {
    /// Total result rows without materializing anything.
    pub fn len(&self) -> usize {
        self.batches.iter().map(ColumnBatch::len).sum::<usize>() + self.rows.len()
    }

    /// `true` when the query produced no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialize the result as rows — the row boundary for callers
    /// that want the classic `Vec<Row>`.
    pub fn into_rows(self) -> Vec<Row> {
        let mut rows: Vec<Row> =
            self.batches.into_iter().flat_map(ColumnBatch::into_rows).collect();
        let mut tail = self.rows;
        if rows.is_empty() {
            return tail;
        }
        rows.append(&mut tail);
        rows
    }
}

/// The submitting session's end of a query: blocks until the worker
/// pool finishes it, and can cancel it.
pub struct QueryHandle {
    rx: Receiver<Result<QueryOutput>>,
    query: Arc<ActiveQuery>,
    core: Arc<SchedCore>,
}

impl QueryHandle {
    /// Wait for the query to finish (or fail).
    pub fn wait(self) -> Result<QueryOutput> {
        self.rx.recv().map_err(|_| Error::exec("scheduler shut down before the query completed"))?
    }

    /// Cancel the query: it fails with [`Error::Cancelled`] at its
    /// next morsel boundary (running queries) or immediately (queries
    /// still waiting for admission), releasing everything it holds
    /// through the same cleanup path as any other failure. Cancelling
    /// a completed query is a no-op; [`QueryHandle::wait`] still
    /// returns whatever the query produced first.
    pub fn cancel(&self) {
        self.query.cancelled.store(true, Ordering::Release);
        let was_waiting = {
            let mut st = lock(&self.core.state);
            let before = st.waiting.len();
            st.waiting.retain(|w| !Arc::ptr_eq(w, &self.query));
            st.epoch += 1;
            before != st.waiting.len()
        };
        // Wake sleeping workers so an idle pool notices the flag.
        self.core.cv.notify_all();
        if was_waiting {
            self.query.record_err(0, Error::Cancelled);
            complete_err(&self.query, &self.core);
        }
    }
}

/// Which phase a query's source lock is currently feeding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PhaseKind {
    /// Draining build `i`'s input into the per-worker build partials.
    Build(usize),
    /// Draining the probe source through the probe stages.
    Probe,
}

/// The serialized heart of a query: its morsel source, pulled under
/// one lock in sequence order so all charged I/O happens in exactly
/// the serial order. One `SrcState` per *phase*; advancing a phase
/// installs a fresh one (seq restarts at 0, matching the serial
/// drivers' per-phase numbering).
struct SrcState {
    core: Option<SourceCore>,
    decoder_spec: Option<(Schema, Predicate)>,
    /// Idle decoder pool: claiming workers pop one (or build a fresh
    /// one from the spec) and return it after decoding.
    decoders: Vec<HeapDecoder>,
    seq: u64,
    done: bool,
    finalized: bool,
    kind: PhaseKind,
}

impl SrcState {
    fn new(
        core: SourceCore,
        decoder_spec: Option<(Schema, Predicate)>,
        kind: PhaseKind,
    ) -> SrcState {
        SrcState {
            core: Some(core),
            decoder_spec,
            decoders: Vec::new(),
            seq: 0,
            done: false,
            finalized: false,
            kind,
        }
    }

    fn empty() -> SrcState {
        SrcState {
            core: None,
            decoder_spec: None,
            decoders: Vec::new(),
            seq: 0,
            done: false,
            finalized: false,
            kind: PhaseKind::Probe,
        }
    }
}

/// One validated hash-join build phase.
struct BuildPhase {
    /// The unopened build source (taken when its open tranche runs).
    source: Mutex<Option<ParallelSource>>,
    /// Opened-but-not-yet-draining source: bushy trees open build
    /// sources in the serial cascade's open order, which can be
    /// several phases before the build itself drains.
    parked: Mutex<Option<ParkedSource>>,
    /// Raw build-side stage specs; resolved against the finished
    /// tables when this build's phase starts (nested probes reference
    /// earlier builds only — validated at plan time).
    spec_stages: Vec<StageSpec>,
    /// Resolved stages, installed by [`install_build_phase`].
    stages: Mutex<Option<Arc<Vec<Stage>>>>,
    schema: Schema,
    right_col: usize,
    left_col: usize,
    ty: JoinType,
    partitions: usize,
    /// Operator memory budget for the merged build table (0 =
    /// unlimited), enforced at [`advance_build`].
    mem_bytes: usize,
    /// How many builds must have completed before this source opens
    /// (0 = at admission) — see [`BuildSpec::open_at`].
    open_at: usize,
    /// Open position within the tranche — see [`BuildSpec::open_order`].
    open_order: usize,
}

/// A probe stage validated at plan time: probe references are checked
/// and output schemas precomputed, so resolution after the builds is
/// infallible.
enum PlannedStage {
    Filter(Predicate),
    Project(Vec<usize>),
    Probe(usize, Schema),
}

/// Terminal merge discipline.
enum SinkKind {
    Collect,
    Agg {
        group_cols: Vec<usize>,
        aggs: Vec<AggFunc>,
        exact: bool,
    },
    /// Ordered scan: rows buffer in morsel (= serial scan) order, then
    /// one charged sort pass at completion — the parallel plan's
    /// serial suffix, byte-identical to the serial `Sort` operator.
    Sort {
        keys: Vec<SortKey>,
        mem_bytes: usize,
    },
}

/// Order-preserving sink state: morsels buffer in a seq-keyed map and
/// fold in sequence order, exactly as the serial driver emits them.
/// Collect sinks fold into `batches` (columnar end to end); sort sinks
/// fold into `rows` (their suffix is a charged row sort).
struct SinkState {
    pending: BTreeMap<u64, Morsel>,
    next: u64,
    batches: Vec<ColumnBatch>,
    rows: Vec<Row>,
    /// The in-order aggregation fold (non-exact merges only).
    ordered_agg: Option<PartialAgg>,
}

/// An opened source parked until its phase starts: the opened core
/// plus the scan-filter spec it re-assembles with when installed.
type ParkedSource = (SourceCore, Option<(Schema, Predicate)>);

/// One claimed-but-unprocessed morsel sitting in a worker's local
/// queue. Claiming charges the pull I/O in serial seq order under the
/// source lock; everything here is the charge-free remainder (decode
/// and stage CPU), so *any* worker — owner or thief — can process it
/// with byte-identical accounting.
struct Pending {
    kind: PhaseKind,
    seq: u64,
    item: SourceItem,
    /// Source file for the morsel-panic fault site.
    file: Option<FileId>,
}

/// One admitted query: a self-contained phase state machine the worker
/// pool drives. Everything result-bearing is per-query state here; the
/// only engine-global state a query touches is [`Storage`].
struct ActiveQuery {
    storage: Storage,
    morsel_rows: usize,
    builds: Vec<BuildPhase>,
    probe_specs: Vec<PlannedStage>,
    sink_kind: SinkKind,
    /// The staged output schema — what every probe morsel conforms to
    /// after the last stage (used to convert stray row morsels when the
    /// Collect sink folds columnar batches).
    out_schema: Schema,
    /// The probe source, opened at admission (serial open order) and
    /// parked until the builds finish.
    probe_source: Mutex<Option<ParallelSource>>,
    parked_probe: Mutex<Option<ParkedSource>>,
    /// Per-worker local morsel queues (work stealing): a claiming
    /// worker deposits its chunk here; dry workers steal from the
    /// longest peer queue. Queued morsels count in `inflight`, so a
    /// phase never finalizes with queued work.
    queues: Vec<Mutex<VecDeque<Pending>>>,
    /// Finished probe tables, one per build, in build order.
    tables: Mutex<Vec<Arc<ProbeTable>>>,
    /// Probe stages, resolved once the last build's table lands.
    probe_stages: Mutex<Option<Arc<Vec<Stage>>>>,
    src: Mutex<SrcState>,
    sink: Mutex<SinkState>,
    /// Slot pools for worker-side partial state (see module docs).
    agg_slots: Mutex<Vec<PartialAgg>>,
    build_slots: Mutex<Vec<JoinBuildPartial>>,
    /// Morsels claimed but not yet delivered in the current phase.
    inflight: AtomicUsize,
    failed: AtomicBool,
    /// Set by [`QueryHandle::cancel`]; noticed at morsel boundaries.
    cancelled: AtomicBool,
    /// Virtual-clock deadline in total-ns (0 = none), stamped at
    /// admission from the scheduler's query timeout.
    deadline_ns: AtomicU64,
    /// First error by morsel seq (the serial driver would have hit the
    /// lowest-seq failure first).
    err: Mutex<Option<(u64, Error)>>,
    stats: Mutex<ScanStatistics>,
    lock_wait_ns: AtomicU64,
    done_tx: Mutex<Option<Sender<Result<QueryOutput>>>>,
}

impl ActiveQuery {
    /// Validate and decompose a pipeline. All plan errors surface here,
    /// before the query is ever queued.
    fn plan(
        pipeline: ParallelPipeline,
        tx: Sender<Result<QueryOutput>>,
        workers: usize,
    ) -> Result<ActiveQuery> {
        let ParallelPipeline { source, builds, stages, sink, storage, morsel_rows } = pipeline;
        let mut schema = source.schema();
        let mut build_phases: Vec<BuildPhase> = Vec::with_capacity(builds.len());
        let mut prior: Vec<(Schema, JoinType)> = Vec::with_capacity(builds.len());
        for (i, build) in builds.into_iter().enumerate() {
            let BuildSpec {
                source,
                stages,
                right_col,
                left_col,
                ty,
                partitions,
                mem_bytes,
                open_at,
                open_order,
            } = build;
            let build_schema = staged_schema(source.schema(), &stages, &prior)?;
            if right_col >= build_schema.len() {
                return Err(Error::plan(format!(
                    "hash-join build key column {right_col} out of range"
                )));
            }
            if open_at > i {
                return Err(Error::plan(format!(
                    "build {i} opens at tranche {open_at}, after its own phase starts"
                )));
            }
            prior.push((build_schema.clone(), ty));
            build_phases.push(BuildPhase {
                source: Mutex::new(Some(source)),
                parked: Mutex::new(None),
                spec_stages: stages,
                stages: Mutex::new(None),
                schema: build_schema,
                right_col,
                left_col,
                ty,
                partitions: partitions.max(1),
                mem_bytes,
                open_at,
                open_order,
            });
        }
        let mut probe_specs = Vec::with_capacity(stages.len());
        for spec in stages {
            match spec {
                StageSpec::Filter(p) => probe_specs.push(PlannedStage::Filter(p)),
                StageSpec::Project(cols) => {
                    schema = staged_schema(schema, &[StageSpec::Project(cols.clone())], &[])?;
                    probe_specs.push(PlannedStage::Project(cols));
                }
                StageSpec::Probe(i) => {
                    let phase = build_phases
                        .get(i)
                        .ok_or_else(|| Error::plan(format!("probe stage references build {i}")))?;
                    schema = match phase.ty {
                        JoinType::Inner => schema.join(&phase.schema),
                        JoinType::LeftSemi => schema,
                    };
                    probe_specs.push(PlannedStage::Probe(i, schema.clone()));
                }
            }
        }
        let (sink_kind, ordered_agg) = match sink {
            SinkSpec::Collect => (SinkKind::Collect, None),
            SinkSpec::Aggregate { group_cols, aggs, merge_exact } => {
                let ordered =
                    if merge_exact { None } else { Some(PartialAgg::new(&group_cols, &aggs)) };
                (SinkKind::Agg { group_cols, aggs, exact: merge_exact }, ordered)
            }
            SinkSpec::Sort { keys, mem_bytes } => (SinkKind::Sort { keys, mem_bytes }, None),
        };
        Ok(ActiveQuery {
            storage,
            morsel_rows,
            builds: build_phases,
            probe_specs,
            sink_kind,
            out_schema: schema,
            probe_source: Mutex::new(Some(source)),
            parked_probe: Mutex::new(None),
            queues: (0..workers.max(1)).map(|_| Mutex::new(VecDeque::new())).collect(),
            tables: Mutex::new(Vec::new()),
            probe_stages: Mutex::new(None),
            src: Mutex::new(SrcState::empty()),
            sink: Mutex::new(SinkState {
                pending: BTreeMap::new(),
                next: 0,
                batches: Vec::new(),
                rows: Vec::new(),
                ordered_agg,
            }),
            agg_slots: Mutex::new(Vec::new()),
            build_slots: Mutex::new(Vec::new()),
            inflight: AtomicUsize::new(0),
            failed: AtomicBool::new(false),
            cancelled: AtomicBool::new(false),
            deadline_ns: AtomicU64::new(0),
            err: Mutex::new(None),
            stats: Mutex::new(ScanStatistics::default()),
            lock_wait_ns: AtomicU64::new(0),
            done_tx: Mutex::new(Some(tx)),
        })
    }

    /// Open the query's sources for its first phase. Runs at admission,
    /// outside the scheduler state lock. The probe source opens first —
    /// the exact open order of the serial driver — then every tranche-0
    /// build source in `open_order`, so single-query accounting is
    /// byte-identical.
    fn admit(&self) -> Result<()> {
        let mark = tap_mark();
        let result = (|| {
            // invariant: `pump` admits each query exactly once, so the
            // probe source is still present here.
            let probe = lock(&self.probe_source).take().expect("a query admits once");
            let (probe_core, probe_decoder) = open_source(probe, self.morsel_rows)?;
            if self.builds.is_empty() {
                self.resolve_probe_stages();
                *lock(&self.src) = SrcState::new(probe_core, probe_decoder, PhaseKind::Probe);
                return Ok(());
            }
            *lock(&self.parked_probe) = Some((probe_core, probe_decoder));
            open_build_tranche(self, 0)?;
            let mut src = lock(&self.src);
            install_build_phase(self, 0, &mut src)
        })();
        lock(&self.stats).merge(&mark.delta());
        result
    }

    /// Swap probe references for the finished tables (infallible: the
    /// references and schemas were validated at plan time).
    fn resolve_probe_stages(&self) {
        let tables = lock(&self.tables);
        let resolved: Vec<Stage> = self
            .probe_specs
            .iter()
            .map(|spec| match spec {
                PlannedStage::Filter(p) => Stage::Filter(p.clone()),
                PlannedStage::Project(cols) => Stage::Project(cols.clone()),
                PlannedStage::Probe(i, schema) => {
                    Stage::Probe(Arc::clone(&tables[*i]), schema.clone())
                }
            })
            .collect();
        *lock(&self.probe_stages) = Some(Arc::new(resolved));
    }

    /// Process one claimed source item outside the source lock and
    /// deliver it to the phase's partial state.
    fn process(
        &self,
        kind: PhaseKind,
        seq: u64,
        item: SourceItem,
        decoder: &mut Option<HeapDecoder>,
    ) -> Result<()> {
        match kind {
            PhaseKind::Build(i) => {
                let phase = &self.builds[i];
                let stages = lock(&phase.stages)
                    .clone()
                    .ok_or_else(|| Error::exec("build morsel before stages resolved"))?;
                let morsel = process_item(item, decoder, &stages, &self.storage)?;
                let batch = build_batch(morsel, &phase.schema)?;
                self.storage.clock().charge_cpu(self.storage.cpu().hash_op_ns * batch.len() as u64);
                let mut partial = lock(&self.build_slots).pop().unwrap_or_else(|| {
                    JoinBuildPartial::new(&phase.schema, phase.right_col, phase.partitions)
                });
                partial.fold(seq, batch)?;
                lock(&self.build_slots).push(partial);
                Ok(())
            }
            PhaseKind::Probe => {
                let stages = lock(&self.probe_stages)
                    .clone()
                    .ok_or_else(|| Error::exec("probe morsel before stages resolved"))?;
                let morsel = process_item(item, decoder, &stages, &self.storage)?;
                if let SinkKind::Agg { group_cols, aggs, exact: true } = &self.sink_kind {
                    let mut slot = lock(&self.agg_slots)
                        .pop()
                        .unwrap_or_else(|| PartialAgg::new(group_cols, aggs));
                    slot.update(&self.storage, seq, &morsel)?;
                    lock(&self.agg_slots).push(slot);
                    return Ok(());
                }
                let collect = matches!(self.sink_kind, SinkKind::Collect);
                let mut sink = lock(&self.sink);
                sink.pending.insert(seq, morsel);
                let SinkState { pending, next, batches, rows, ordered_agg } = &mut *sink;
                while let Some(m) = pending.remove(next) {
                    match ordered_agg.as_mut() {
                        Some(agg) => agg.update(&self.storage, *next, &m)?,
                        None if collect => batches.push(m.into_batch(&self.out_schema)?),
                        None => rows.extend(m.into_rows()),
                    }
                    *next += 1;
                }
                Ok(())
            }
        }
    }

    /// Record a failure, keeping the lowest-seq error (the one the
    /// serial driver would have surfaced).
    fn record_err(&self, seq: u64, e: Error) {
        self.failed.store(true, Ordering::Release);
        let mut slot = lock(&self.err);
        match slot.as_ref() {
            Some((s, _)) if *s <= seq => {}
            _ => *slot = Some((seq, e)),
        }
    }
}

/// Stable draw key for the morsel-panic fault site: phase-qualified
/// sequence number, identical for a given query no matter the worker
/// count or interleaving (seqs are claimed in serial source order).
fn morsel_panic_key(kind: PhaseKind, seq: u64) -> u64 {
    match kind {
        PhaseKind::Build(i) => (i as u64 + 1) << 48 | seq,
        PhaseKind::Probe => seq,
    }
}

/// Convert a caught panic payload to the query's typed error.
fn panic_error(payload: &(dyn std::any::Any + Send)) -> Error {
    if let Some(injected) = payload.downcast_ref::<InjectedPanic>() {
        Error::exec(format!("injected worker panic (morsel key {})", injected.key))
    } else if let Some(msg) = payload.downcast_ref::<&str>() {
        Error::exec(format!("worker panicked: {msg}"))
    } else if let Some(msg) = payload.downcast_ref::<String>() {
        Error::exec(format!("worker panicked: {msg}"))
    } else {
        Error::exec("worker panicked")
    }
}

/// Poison-free std mutex lock: a worker that panics inside morsel
/// processing is caught by `try_work`'s `catch_unwind`, but a panic in
/// the narrow windows where scheduler locks are held must still not
/// wedge the pool — recovering the poisoned guard keeps every other
/// query running (the failing query's own error wins via `record_err`).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Scheduler-wide shared state.
struct SchedState {
    running: Vec<Arc<ActiveQuery>>,
    waiting: VecDeque<Arc<ActiveQuery>>,
    /// Queries mid-admission (counted against `max_queries` so a burst
    /// of submits cannot over-admit).
    admitting: usize,
    /// Bumped on every state change workers might sleep on.
    epoch: u64,
    shutdown: bool,
}

struct SchedCore {
    state: Mutex<SchedState>,
    cv: Condvar,
    max_queries: usize,
    /// Pool size; sizes per-query local queues and the guided claim.
    workers: usize,
    /// Per-query timeout in virtual-clock milliseconds (0 = none);
    /// `SMOOTH_QUERY_TIMEOUT_MS` seeds it, `set_timeout_ms` overrides.
    timeout_ms: AtomicU64,
    /// Morsels per source claim (0 = guided by remaining work);
    /// `SMOOTH_CLAIM_MORSELS` seeds it, `set_claim_morsels` overrides.
    claim_morsels: AtomicUsize,
}

/// Route injected-panic payloads around the default "thread panicked"
/// stderr noise: deliberate chaos is caught and converted to a typed
/// error by the worker, so only *real* panics should stay loud.
/// Installed once per process, delegating to the previous hook.
fn install_panic_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Per-query timeout used when none is set on a scheduler: the
/// `SMOOTH_QUERY_TIMEOUT_MS` environment variable in **virtual-clock**
/// milliseconds (read once per process and latched, like
/// `SMOOTH_WORKERS`), default 0 = no timeout.
pub fn default_query_timeout_ms() -> u64 {
    static MS: OnceLock<u64> = OnceLock::new();
    *MS.get_or_init(|| {
        std::env::var("SMOOTH_QUERY_TIMEOUT_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
    })
}

/// Morsels per source claim when none is set on a scheduler: the
/// `SMOOTH_CLAIM_MORSELS` environment variable (read once per process
/// and latched, like `SMOOTH_WORKERS`), default 0 = guided — each
/// claim takes `remaining / (2 · workers)` clamped to `[1, 64]`, so
/// chunks shrink toward 1 as the source drains (classic guided
/// self-scheduling; see `claim_size` in [`crate::parallel`]).
pub fn default_claim_morsels() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("SMOOTH_CLAIM_MORSELS").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
    })
}

/// The engine's persistent worker pool: serves every submitted query
/// until dropped. Dropping the scheduler drains queries already
/// admitted, then joins the workers; queries still waiting for
/// admission complete with an error on their handle.
pub struct Scheduler {
    core: Arc<SchedCore>,
    threads: Vec<JoinHandle<()>>,
}

impl Scheduler {
    /// Spawn a pool of `workers` threads admitting at most
    /// `max_queries` concurrent queries (both clamped to at least 1).
    pub fn new(workers: usize, max_queries: usize) -> Scheduler {
        install_panic_hook();
        let core = Arc::new(SchedCore {
            state: Mutex::new(SchedState {
                running: Vec::new(),
                waiting: VecDeque::new(),
                admitting: 0,
                epoch: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
            max_queries: max_queries.max(1),
            workers: workers.max(1),
            timeout_ms: AtomicU64::new(default_query_timeout_ms()),
            claim_morsels: AtomicUsize::new(default_claim_morsels()),
        });
        let threads = (0..workers.max(1))
            .map(|i| {
                let core = Arc::clone(&core);
                std::thread::spawn(move || worker_loop(&core, i))
            })
            .collect();
        Scheduler { core, threads }
    }

    /// Plan and enqueue a query. Plan errors return immediately;
    /// admission beyond `max_queries` queues FIFO.
    pub fn submit(&self, pipeline: ParallelPipeline) -> Result<QueryHandle> {
        let (tx, rx) = mpsc::channel();
        let query = Arc::new(ActiveQuery::plan(pipeline, tx, self.core.workers)?);
        {
            let mut st = lock(&self.core.state);
            if st.shutdown {
                return Err(Error::exec("scheduler is shut down"));
            }
            st.waiting.push_back(Arc::clone(&query));
        }
        pump(&self.core);
        Ok(QueryHandle { rx, query, core: Arc::clone(&self.core) })
    }

    /// The pool size.
    pub fn workers(&self) -> usize {
        self.threads.len()
    }

    /// The admission cap.
    pub fn max_queries(&self) -> usize {
        self.core.max_queries
    }

    /// Override the per-query timeout (virtual-clock milliseconds,
    /// 0 disables). Applies to queries admitted from now on.
    pub fn set_timeout_ms(&self, ms: u64) {
        self.core.timeout_ms.store(ms, Ordering::Relaxed);
    }

    /// The current per-query timeout in virtual-clock milliseconds.
    pub fn timeout_ms(&self) -> u64 {
        self.core.timeout_ms.load(Ordering::Relaxed)
    }

    /// Override the morsels-per-claim chunk size (0 = guided).
    /// Applies to claims made from now on, running queries included.
    pub fn set_claim_morsels(&self, n: usize) {
        self.core.claim_morsels.store(n, Ordering::Relaxed);
    }

    /// The current morsels-per-claim chunk size (0 = guided).
    pub fn claim_morsels(&self) -> usize {
        self.core.claim_morsels.load(Ordering::Relaxed)
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.core.state);
            st.shutdown = true;
            st.epoch += 1;
        }
        self.core.cv.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Admit waiting queries up to the cap. Source opening runs outside
/// the state lock (it performs I/O); `admitting` holds the slot.
fn pump(core: &SchedCore) {
    loop {
        let query = {
            let mut st = lock(&core.state);
            if st.shutdown || st.running.len() + st.admitting >= core.max_queries {
                return;
            }
            let Some(q) = st.waiting.pop_front() else { return };
            st.admitting += 1;
            q
        };
        // Stamp the virtual-clock deadline before opening sources so
        // admission I/O counts against the timeout too.
        let timeout_ms = core.timeout_ms.load(Ordering::Relaxed);
        if timeout_ms > 0 {
            let now = query.storage.clock().snapshot().total_ns();
            let deadline = now.saturating_add(timeout_ms.saturating_mul(1_000_000)).max(1);
            query.deadline_ns.store(deadline, Ordering::Relaxed);
        }
        let opened = if query.cancelled.load(Ordering::Acquire) {
            // Cancelled while queued (a racing `cancel` may have missed
            // it in `waiting`): fail it instead of admitting.
            Err(Error::Cancelled)
        } else {
            query.admit()
        };
        {
            let mut st = lock(&core.state);
            st.admitting -= 1;
            if let Ok(()) = opened {
                st.running.push(Arc::clone(&query));
                st.epoch += 1;
            }
        }
        core.cv.notify_all();
        if let Err(e) = opened {
            query.record_err(0, e);
            complete_err(&query, core);
        }
    }
}

fn worker_loop(core: &SchedCore, index: usize) {
    loop {
        let (queries, epoch) = {
            let st = lock(&core.state);
            if st.shutdown && st.running.is_empty() {
                return;
            }
            (st.running.clone(), st.epoch)
        };
        let mut worked = false;
        let n = queries.len();
        for i in 0..n {
            // Round-robin offset by worker index: workers spread over
            // queries instead of ganging up on the first one.
            if try_work(&queries[(index + i) % n], core, index) {
                worked = true;
            }
        }
        if !worked {
            let st = lock(&core.state);
            if st.shutdown && st.running.is_empty() {
                return;
            }
            if st.epoch == epoch {
                let _unused = core.cv.wait(st).unwrap_or_else(|p| p.into_inner());
            }
        }
    }
}

/// Make one unit of progress on `q` as worker `widx`: pop the local
/// queue, else claim a chunk from the source, else steal from the
/// longest peer queue. Returns whether any progress was made.
fn try_work(q: &Arc<ActiveQuery>, core: &SchedCore, widx: usize) -> bool {
    let widx = widx % q.queues.len();
    // 1. Local queue first: the cheapest, locality-preserving path.
    let local = lock(&q.queues[widx]).pop_front();
    if let Some(p) = local {
        return process_pending(q, core, p);
    }
    // 2. Claim a chunk of morsels from the query's source.
    if claim_chunk(q, core, widx) {
        return true;
    }
    // 3. Dry: steal the coldest morsel from the busiest peer. The
    // execution charges nothing extra for a steal — the locality cost
    // exists only in the scaling model
    // ([`crate::parallel::STEAL_PENALTY_PERMILLE`]).
    match steal(q, widx) {
        Some(p) => process_pending(q, core, p),
        None => false,
    }
}

/// Claim up to [`claim_size`] morsels from `q`'s source under its
/// lock — so all charged pull I/O stays in exact serial seq order —
/// and deposit them in worker `widx`'s local queue. Returns whether
/// any progress was made.
fn claim_chunk(q: &Arc<ActiveQuery>, core: &SchedCore, widx: usize) -> bool {
    let wait_start = Instant::now();
    let mut src = lock(&q.src);
    q.lock_wait_ns.fetch_add(wait_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    if src.finalized || src.done || src.core.is_none() {
        return false;
    }
    // Morsel-boundary checks: cancellation and the virtual-clock
    // timeout both surface as `Error::Cancelled` and drain through the
    // same failure path as any other error.
    if !q.failed.load(Ordering::Acquire) {
        let deadline = q.deadline_ns.load(Ordering::Relaxed);
        if q.cancelled.load(Ordering::Acquire)
            || (deadline > 0 && q.storage.clock().snapshot().total_ns() >= deadline)
        {
            q.record_err(src.seq, Error::Cancelled);
        }
    }
    if q.failed.load(Ordering::Acquire) {
        src.done = true;
        drop(src);
        // Queued morsels of a failed query are dead work: discard them
        // so the phase can finalize without processing them.
        drain_queues(q, core);
        maybe_finalize(q, core);
        return true;
    }
    let mark = tap_mark();
    let fixed = core.claim_morsels.load(Ordering::Relaxed);
    // invariant: `src.core.is_none()` returned above, so the core is
    // still present (the source lock is held throughout the claim).
    let k = {
        let c = src.core.as_ref().expect("checked above");
        source_claim(fixed, c.remaining_hint(), core.workers)
    };
    let kind = src.kind;
    let mut claimed: Vec<Pending> = Vec::with_capacity(k);
    // Some(Ok) = source exhausted mid-chunk, Some(Err) = pull failed.
    let mut end: Option<Result<()>> = None;
    for _ in 0..k {
        // invariant: checked non-None above; the lock is held, so no
        // one else can take the core out from under the claim.
        match src.core.as_mut().expect("checked above").pull(&q.storage) {
            Ok(Some(item)) => {
                let file = src.core.as_ref().and_then(SourceCore::file_id);
                claimed.push(Pending { kind, seq: src.seq, item, file });
                src.seq += 1;
            }
            Ok(None) => {
                end = Some(Ok(()));
                break;
            }
            Err(e) => {
                end = Some(Err(e));
                break;
            }
        }
    }
    let err_seq = src.seq;
    if end.is_some() {
        src.done = true;
    }
    // Queued morsels pin the phase exactly like in-flight ones.
    q.inflight.fetch_add(claimed.len(), Ordering::AcqRel);
    drop(src);
    // The pull I/O is this claim's attribution; `morsels` counts at
    // processing time, once per item, wherever it runs.
    lock(&q.stats).merge(&mark.delta());
    if let Some(Err(e)) = end {
        q.record_err(err_seq, e);
    }
    let extras = claimed.len() > 1;
    if !claimed.is_empty() {
        lock(&q.queues[widx]).extend(claimed);
    }
    if extras {
        // Wake sleeping peers: the surplus is up for stealing.
        {
            let mut st = lock(&core.state);
            st.epoch += 1;
        }
        core.cv.notify_all();
    }
    // If the source just ran dry, the claimed items (queued on this
    // worker) keep `inflight` nonzero; the last one processed
    // finalizes. With nothing claimed this claim itself finalizes.
    maybe_finalize(q, core);
    true
}

/// Process one queued morsel (local or stolen) outside the source
/// lock, delivering it to the phase's partial state.
fn process_pending(q: &Arc<ActiveQuery>, core: &SchedCore, p: Pending) -> bool {
    // Morsel-boundary checks, same as at claim time: a queued morsel
    // of a cancelled, timed-out, or failed query is discarded — its
    // result could never be delivered anyway.
    if !q.failed.load(Ordering::Acquire) {
        let deadline = q.deadline_ns.load(Ordering::Relaxed);
        if q.cancelled.load(Ordering::Acquire)
            || (deadline > 0 && q.storage.clock().snapshot().total_ns() >= deadline)
        {
            q.record_err(p.seq, Error::Cancelled);
        }
    }
    if q.failed.load(Ordering::Acquire) {
        if q.inflight.fetch_sub(1, Ordering::AcqRel) == 1 {
            maybe_finalize(q, core);
        }
        return true;
    }
    let Pending { kind, seq, item, file } = p;
    let mark = tap_mark();
    // Decoder pool: pop one under a brief source relock (or build a
    // fresh one from the spec). `inflight > 0` pins the phase, so the
    // SrcState — and its decoder spec — is still the one this morsel
    // was claimed from, stolen morsels included.
    let mut decoder = {
        let mut src = lock(&q.src);
        src.decoders.pop().or_else(|| src.decoder_spec.clone().map(|(s, p)| HeapDecoder::new(s, p)))
    };
    // Panic containment: injected chaos panics (the morsel fault site)
    // and *any* real panic in morsel processing unwind to here and
    // become a typed per-query error — the worker thread, the pool,
    // and every other query survive.
    let result = match catch_unwind(AssertUnwindSafe(|| {
        if q.storage.morsel_panics(file, morsel_panic_key(kind, seq)) {
            std::panic::panic_any(InjectedPanic { key: morsel_panic_key(kind, seq) });
        }
        q.process(kind, seq, item, &mut decoder)
    })) {
        Ok(r) => r,
        Err(payload) => {
            // The decoder may have unwound mid-decode: drop it rather
            // than returning it to the pool.
            decoder = None;
            Err(panic_error(payload.as_ref()))
        }
    };
    if let Some(d) = decoder {
        lock(&q.src).decoders.push(d);
    }
    let mut delta = mark.delta();
    delta.morsels = 1;
    lock(&q.stats).merge(&delta);
    if let Err(e) = result {
        q.record_err(seq, e);
    }
    if q.inflight.fetch_sub(1, Ordering::AcqRel) == 1 {
        maybe_finalize(q, core);
    }
    true
}

/// Steal the *back* of the longest peer queue: the morsel farthest
/// from the owner's working set, so the owner keeps its hot front.
/// Ties break toward the lowest worker index. Best-effort — a peer may
/// drain its queue between the length probe and the pop.
fn steal(q: &Arc<ActiveQuery>, widx: usize) -> Option<Pending> {
    let victim = (0..q.queues.len())
        .filter(|&v| v != widx)
        .max_by_key(|&v| (lock(&q.queues[v]).len(), std::cmp::Reverse(v)))?;
    lock(&q.queues[victim]).pop_back()
}

/// Discard every queued morsel of a failed query, releasing their
/// `inflight` pins so the phase can finalize.
fn drain_queues(q: &Arc<ActiveQuery>, core: &SchedCore) {
    let mut drained = 0;
    for queue in &q.queues {
        drained += lock(queue).drain(..).count();
    }
    if drained > 0 && q.inflight.fetch_sub(drained, Ordering::AcqRel) == drained {
        maybe_finalize(q, core);
    }
}

/// If the current phase is fully drained (source exhausted, no morsel
/// in flight), close it out: merge build partials and open the next
/// phase, or complete the query. Runs under the source lock; the
/// `finalized` flag makes it idempotent.
fn maybe_finalize(q: &Arc<ActiveQuery>, core: &SchedCore) {
    let mut src = lock(&q.src);
    if src.finalized || !src.done || q.inflight.load(Ordering::Acquire) != 0 {
        return;
    }
    src.finalized = true;
    let end_seq = src.seq;
    if let Some(c) = src.core.take() {
        let mark = tap_mark();
        if let Err(e) = c.close() {
            q.record_err(end_seq, e);
        }
        lock(&q.stats).merge(&mark.delta());
    }
    let kind = src.kind;
    if q.failed.load(Ordering::Acquire) {
        drop(src);
        complete_err(q, core);
        return;
    }
    match kind {
        PhaseKind::Build(i) => {
            let advanced = advance_build(q, i, &mut src);
            drop(src);
            match advanced {
                Ok(()) => {
                    let mut st = lock(&core.state);
                    st.epoch += 1;
                    drop(st);
                    core.cv.notify_all();
                }
                Err(e) => {
                    q.record_err(end_seq, e);
                    complete_err(q, core);
                }
            }
        }
        PhaseKind::Probe => {
            drop(src);
            complete_ok(q, core);
        }
    }
}

/// Merge build `i`'s per-worker partials into its probe table and
/// install the next phase into `src`.
fn advance_build(q: &Arc<ActiveQuery>, i: usize, src: &mut SrcState) -> Result<()> {
    let phase = &q.builds[i];
    // Build input exhausted: settle deferred grace-join passes on the
    // tables this build's nested probes touched — exactly where the
    // serial cascade's probe exhaustion charges them, before the new
    // table's budget enforcement below. `finish_probe` is idempotent,
    // so `complete_ok`'s blanket pass over all tables stays safe.
    if let Some(stages) = lock(&phase.stages).clone() {
        for stage in stages.iter() {
            if let Stage::Probe(t, _) = stage {
                t.table.finish_probe(&q.storage)?;
            }
        }
    }
    let slots = std::mem::take(&mut *lock(&q.build_slots));
    let mut table = merge_partials(slots, &phase.schema, phase.right_col, phase.partitions);
    // The merged table is byte-identical to the serial build, so the
    // budget enforcement — and its charged spill I/O — is too. A
    // failed overflow-file write (injected spill fault) fails the
    // whole query here.
    table.apply_budget(&q.storage, phase.mem_bytes)?;
    lock(&q.tables).push(Arc::new(ProbeTable { table, left_col: phase.left_col, ty: phase.ty }));
    // Build `i` completed: open the sources of tranche `i + 1` in the
    // serial cascade's open order (bushy trees open build sources
    // before their own phase starts).
    let mark = tap_mark();
    let tranche = open_build_tranche(q, i + 1);
    lock(&q.stats).merge(&mark.delta());
    tranche?;
    if i + 1 < q.builds.len() {
        install_build_phase(q, i + 1, src)
    } else {
        q.resolve_probe_stages();
        // invariant: `admit` parks the probe source whenever builds
        // exist, and only the last build's finalizer reaches here.
        let (core, decoder) =
            lock(&q.parked_probe).take().expect("probe source parked at admission");
        *src = SrcState::new(core, decoder, PhaseKind::Probe);
        Ok(())
    }
}

/// Open every build source whose `open_at` tranche is `at`, in
/// `open_order` — the serial driver's exact open order — and park the
/// opened cores until their build phase starts. The caller brackets
/// this with a tap mark so the open I/O is attributed to the query.
fn open_build_tranche(q: &ActiveQuery, at: usize) -> Result<()> {
    let mut order: Vec<usize> = (0..q.builds.len()).collect();
    order.sort_by_key(|&j| q.builds[j].open_order);
    for j in order {
        if q.builds[j].open_at != at {
            continue;
        }
        let Some(source) = lock(&q.builds[j].source).take() else { continue };
        let opened = open_source(source, q.morsel_rows)?;
        *lock(&q.builds[j].parked) = Some(opened);
    }
    Ok(())
}

/// Start build `i`: resolve its stages against the finished tables
/// (nested probes reference earlier builds only) and install its
/// parked source as the query's active phase.
fn install_build_phase(q: &ActiveQuery, i: usize, src: &mut SrcState) -> Result<()> {
    let phase = &q.builds[i];
    let (core, decoder) = lock(&phase.parked).take().ok_or_else(|| {
        Error::plan(format!("build {i} source never opened (open_at {})", phase.open_at))
    })?;
    let tables = lock(&q.tables).clone();
    let (stages, _) = resolve_stages(&phase.spec_stages, core.schema(), &tables)?;
    *lock(&phase.stages) = Some(Arc::new(stages));
    *src = SrcState::new(core, decoder, PhaseKind::Build(i));
    Ok(())
}

/// Merge per-worker build partials into one probe table. One slot
/// converts directly (its match lists are already in global order);
/// several merge by global build position via the charge-free
/// [`JoinBuildTable::merge_partition`], so the result — and the clock —
/// are byte-identical to the single-worker build.
fn merge_partials(
    slots: Vec<JoinBuildPartial>,
    schema: &Schema,
    right_col: usize,
    partitions: usize,
) -> JoinBuildTable {
    if slots.len() <= 1 {
        return slots
            .into_iter()
            .next()
            .unwrap_or_else(|| JoinBuildPartial::new(schema, right_col, partitions))
            .into_table(schema);
    }
    let mut payloads = Vec::with_capacity(slots.len());
    let mut part_iters = Vec::with_capacity(slots.len());
    for slot in slots {
        let (payload, parts) = slot.into_parts();
        payloads.push(payload);
        part_iters.push(parts.into_iter());
    }
    let mut parts = Vec::with_capacity(partitions);
    for _ in 0..partitions {
        let worker_maps: Vec<PartialPartition> = part_iters
            .iter_mut()
            // invariant: `JoinBuildPartial::new` always allocates
            // exactly `partitions` partitions per slot.
            .map(|it| it.next().expect("every partial has `partitions` partitions"))
            .collect();
        parts.push(JoinBuildTable::merge_partition(worker_maps));
    }
    JoinBuildTable::from_merged(schema, right_col, payloads, parts)
}

/// Finish a successful query: fold the sink state into result rows and
/// hand them to the session.
fn complete_ok(q: &Arc<ActiveQuery>, core: &SchedCore) {
    // Probe input fully consumed: charge any deferred grace-join spill
    // passes (order-independent sums, so the charge is identical no
    // matter how workers interleaved the probe morsels). The spool is
    // a spill write, so it can fail the query this late.
    for t in lock(&q.tables).iter() {
        if let Err(e) = t.table.finish_probe(&q.storage) {
            q.record_err(u64::MAX, e);
        }
    }
    if q.failed.load(Ordering::Acquire) {
        complete_err(q, core);
        return;
    }
    let mut batches = Vec::new();
    let rows = match &q.sink_kind {
        SinkKind::Collect => {
            let mut sink = lock(&q.sink);
            debug_assert!(sink.pending.is_empty(), "ordered sink drained every seq");
            batches = std::mem::take(&mut sink.batches);
            Vec::new()
        }
        SinkKind::Agg { group_cols, aggs, exact: true } => {
            let slots = std::mem::take(&mut *lock(&q.agg_slots));
            let mut merged = PartialAgg::new(group_cols, aggs);
            for slot in slots {
                merged.merge(slot);
            }
            merged.finish()
        }
        SinkKind::Agg { .. } => {
            let mut sink = lock(&q.sink);
            debug_assert!(sink.pending.is_empty(), "ordered sink drained every seq");
            // invariant: `plan` installs the ordered agg for every
            // non-exact aggregate sink, and only `complete_ok` (run
            // once — it empties `done_tx`) takes it.
            sink.ordered_agg.take().expect("ordered agg installed at plan time").finish()
        }
        SinkKind::Sort { keys, mem_bytes } => {
            // The buffered rows are in morsel = serial scan order, so
            // this one stable sort pass produces — and charges —
            // exactly what the serial `Sort` operator does. It can
            // spill under a budget, so it can still fail the query.
            let mut rows = {
                let mut sink = lock(&q.sink);
                debug_assert!(sink.pending.is_empty(), "ordered sink drained every seq");
                std::mem::take(&mut sink.rows)
            };
            let mark = tap_mark();
            let sorted = crate::sort::sort_rows_charged(&q.storage, &mut rows, keys, *mem_bytes);
            lock(&q.stats).merge(&mark.delta());
            if let Err(e) = sorted {
                q.record_err(u64::MAX, e);
            }
            rows
        }
    };
    if q.failed.load(Ordering::Acquire) {
        complete_err(q, core);
        return;
    }
    let mut stats = *lock(&q.stats);
    stats.lock_wait_ns = stats.lock_wait_ns.saturating_add(q.lock_wait_ns.load(Ordering::Relaxed));
    finish(q, core, Ok(QueryOutput { batches, rows, stats }));
}

/// Finish a failed query with its first (lowest-seq) error, releasing
/// everything it still holds: worker-side partial slots, finished
/// build tables (dropping their overflow spill files), the sink
/// buffer, and any parked source — so a failed query leaves no build
/// memory, no spill files, and no open sources behind, no matter which
/// phase it died in.
fn complete_err(q: &Arc<ActiveQuery>, core: &SchedCore) {
    lock(&q.build_slots).clear();
    lock(&q.agg_slots).clear();
    *lock(&q.probe_stages) = None;
    lock(&q.tables).clear();
    {
        let mut sink = lock(&q.sink);
        sink.pending.clear();
        sink.batches.clear();
        sink.rows.clear();
        sink.ordered_agg = None;
    }
    if let Some((parked, _)) = lock(&q.parked_probe).take() {
        let _ = parked.close();
    }
    // Bushy trees park opened build sources ahead of their phase;
    // close any still waiting so a failed query leaves none open.
    for phase in &q.builds {
        *lock(&phase.stages) = None;
        if let Some((parked, _)) = lock(&phase.parked).take() {
            let _ = parked.close();
        }
    }
    let err = lock(&q.err)
        .take()
        .map(|(_, e)| e)
        .unwrap_or_else(|| Error::exec("query failed without a recorded error"));
    finish(q, core, Err(err));
}

fn finish(q: &Arc<ActiveQuery>, core: &SchedCore, result: Result<QueryOutput>) {
    if let Some(tx) = lock(&q.done_tx).take() {
        let _ = tx.send(result);
    }
    {
        let mut st = lock(&core.state);
        st.running.retain(|r| !Arc::ptr_eq(r, q));
        st.epoch += 1;
    }
    core.cv.notify_all();
    pump(core);
}

// Compile-time Send/Sync audit: queries are shared across the pool.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ActiveQuery>();
    assert_send_sync::<SchedCore>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::collect_rows;
    use crate::{batch_size, FullTableScan, SinkSpec};
    use smooth_storage::{CpuCosts, DeviceProfile, HeapFile, HeapLoader, StorageConfig};
    use smooth_types::{Column, DataType, DataType::Int64, Value};

    fn table(rows: i64, name: &str) -> Arc<HeapFile> {
        let schema = Schema::new(vec![
            Column::new("c0", Int64),
            Column::new("c1", Int64),
            Column::new("pad", DataType::Text),
        ])
        .unwrap();
        let mut loader = HeapLoader::new_mem(name, schema);
        for i in 0..rows {
            let c1 = (i * 2654435761 % 1000 + 1000) % 1000;
            loader
                .push(&Row::new(vec![Value::Int(i), Value::Int(c1), Value::str("y".repeat(24))]))
                .unwrap();
        }
        Arc::new(loader.finish().unwrap())
    }

    fn storage() -> Storage {
        Storage::new(StorageConfig {
            device: DeviceProfile::custom("t", 1, 10),
            cpu: CpuCosts::default(),
            pool_pages: 64,
        })
    }

    fn scan_pipeline(heap: &Arc<HeapFile>, s: &Storage, lo: i64, hi: i64) -> ParallelPipeline {
        // The predicate rides in the scan itself (the planner pushes it
        // there), so `rows_processed` reflects qualifying tuples.
        ParallelPipeline {
            source: ParallelSource::Heap {
                heap: Arc::clone(heap),
                predicate: Predicate::int_half_open(1, lo, hi),
                readahead: crate::scan::FULL_SCAN_READAHEAD,
            },
            builds: Vec::new(),
            stages: Vec::new(),
            sink: SinkSpec::Collect,
            storage: s.clone(),
            morsel_rows: batch_size(),
        }
    }

    fn serial_rows(heap: &Arc<HeapFile>, lo: i64, hi: i64) -> Vec<Row> {
        let s = storage();
        let mut op = FullTableScan::new(Arc::clone(heap), s, Predicate::int_half_open(1, lo, hi));
        collect_rows(&mut op).unwrap()
    }

    #[test]
    fn concurrent_queries_on_one_scheduler_are_row_identical() {
        let heap = table(3000, "shared");
        let s = storage();
        let scheduler = Scheduler::new(4, 4);
        let ranges = [(0i64, 250i64), (250, 600), (600, 1000), (0, 1000)];
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(lo, hi)| scheduler.submit(scan_pipeline(&heap, &s, lo, hi)).unwrap())
            .collect();
        for (handle, &(lo, hi)) in handles.into_iter().zip(&ranges) {
            let out = handle.wait().unwrap();
            assert!(out.rows.is_empty(), "collect sink output stays columnar");
            assert!(out.stats.rows_scanned >= out.stats.rows_processed);
            assert_eq!(out.stats.rows_processed, out.len() as u64);
            assert!(out.stats.morsels > 0);
            assert_eq!(out.into_rows(), serial_rows(&heap, lo, hi), "range [{lo},{hi})");
        }
    }

    #[test]
    fn admission_caps_concurrency_and_queues_fifo() {
        // max_queries = 1: queries run strictly one at a time, yet all
        // queued submissions complete correctly.
        let heap = table(2000, "fifo");
        let s = storage();
        let scheduler = Scheduler::new(2, 1);
        let handles: Vec<_> = (0..5)
            .map(|i| {
                let hi = 100 * (i + 1) as i64;
                scheduler.submit(scan_pipeline(&heap, &s, 0, hi)).unwrap()
            })
            .collect();
        for (i, handle) in handles.into_iter().enumerate() {
            let hi = 100 * (i + 1) as i64;
            assert_eq!(handle.wait().unwrap().into_rows(), serial_rows(&heap, 0, hi));
        }
    }

    #[test]
    fn per_query_stats_attribute_io_under_concurrency() {
        // Two concurrent full scans over *different* heaps on one
        // shared storage: each query's pages must equal its own heap's
        // page count (attribution never leaks across queries), and the
        // sum of per-query pages equals the engine-global counter.
        let a = table(2400, "heap_a");
        let b = table(1200, "heap_b");
        let s = storage();
        s.reset_metrics();
        let scheduler = Scheduler::new(4, 4);
        let ha = scheduler.submit(scan_pipeline(&a, &s, 0, 1000)).unwrap();
        let hb = scheduler.submit(scan_pipeline(&b, &s, 0, 1000)).unwrap();
        let oa = ha.wait().unwrap();
        let ob = hb.wait().unwrap();
        assert_eq!(oa.stats.pages_read, u64::from(a.page_count()));
        assert_eq!(ob.stats.pages_read, u64::from(b.page_count()));
        assert_eq!(oa.stats.rows_scanned, 2400);
        assert_eq!(ob.stats.rows_scanned, 1200);
        let engine = s.io_snapshot();
        assert_eq!(engine.pages_read, oa.stats.pages_read + ob.stats.pages_read);
        assert_eq!(engine.buffer_hits, oa.stats.buffer_hits + ob.stats.buffer_hits);
    }

    #[test]
    fn cancelled_query_fails_typed_and_scheduler_survives() {
        let heap = table(3000, "cancel_me");
        let s = storage();
        let scheduler = Scheduler::new(2, 4);
        let handle = scheduler.submit(scan_pipeline(&heap, &s, 0, 1000)).unwrap();
        handle.cancel();
        // Cancellation lands at a morsel boundary: the query must fail
        // with the typed variant (or, if it already finished the race,
        // return its complete result — never hang, never a partial).
        match handle.wait() {
            Err(Error::Cancelled) => {}
            Ok(out) => assert_eq!(out.into_rows(), serial_rows(&heap, 0, 1000)),
            Err(e) => panic!("unexpected error: {e}"),
        }
        // The pool is untouched: a fresh query still runs to completion.
        let out = scheduler.submit(scan_pipeline(&heap, &s, 0, 250)).unwrap().wait().unwrap();
        assert_eq!(out.into_rows(), serial_rows(&heap, 0, 250));
    }

    #[test]
    fn cancelling_a_waiting_query_dequeues_it() {
        // max_queries = 1: the second submission waits for admission;
        // cancelling it must complete it immediately with Cancelled
        // without disturbing the running query.
        let heap = table(2000, "waitq");
        let s = storage();
        let scheduler = Scheduler::new(2, 1);
        let running = scheduler.submit(scan_pipeline(&heap, &s, 0, 1000)).unwrap();
        let waiting = scheduler.submit(scan_pipeline(&heap, &s, 0, 500)).unwrap();
        waiting.cancel();
        assert!(matches!(waiting.wait(), Err(Error::Cancelled)));
        assert_eq!(running.wait().unwrap().into_rows(), serial_rows(&heap, 0, 1000));
    }

    #[test]
    fn virtual_clock_timeout_cancels_long_queries() {
        // The deadline is virtual: an HDD-modeled scan of a few dozen
        // pages charges millions of virtual nanoseconds, so a 1-virtual-
        // millisecond budget trips at an early morsel boundary.
        let heap = table(3000, "deadline");
        let s = Storage::default_hdd();
        let scheduler = Scheduler::new(2, 4);
        scheduler.set_timeout_ms(1);
        assert_eq!(scheduler.timeout_ms(), 1);
        let err = scheduler.submit(scan_pipeline(&heap, &s, 0, 1000)).unwrap().wait().unwrap_err();
        assert!(matches!(err, Error::Cancelled), "{err}");
        // Disabling the timeout restores normal completion.
        scheduler.set_timeout_ms(0);
        let out = scheduler.submit(scan_pipeline(&heap, &s, 0, 1000)).unwrap().wait().unwrap();
        assert_eq!(out.into_rows(), serial_rows(&heap, 0, 1000));
    }

    #[test]
    fn injected_panic_is_contained_and_other_sessions_survive() {
        use smooth_storage::FaultConfig;
        let poisoned_heap = table(2000, "poisoned");
        let clean_heap = table(2000, "clean");
        let sp = storage();
        sp.set_faults(Some(FaultConfig::new(11).panic(1.0)));
        let sc = storage();
        let scheduler = Scheduler::new(4, 4);
        // Interleave: the poisoned query panics at its first morsel
        // while the clean one runs on the same pool.
        let hp = scheduler.submit(scan_pipeline(&poisoned_heap, &sp, 0, 1000)).unwrap();
        let hc = scheduler.submit(scan_pipeline(&clean_heap, &sc, 0, 1000)).unwrap();
        let err = hp.wait().unwrap_err();
        assert!(matches!(&err, Error::Exec(msg) if msg.contains("injected worker panic")), "{err}");
        assert_eq!(hc.wait().unwrap().into_rows(), serial_rows(&clean_heap, 0, 1000));
        // Containment left the workers alive: a fresh query still runs.
        let out =
            scheduler.submit(scan_pipeline(&clean_heap, &sc, 0, 250)).unwrap().wait().unwrap();
        assert_eq!(out.into_rows(), serial_rows(&clean_heap, 0, 250));
    }

    #[test]
    fn transient_io_faults_retry_to_success_with_backoff_on_the_clock() {
        use smooth_storage::faults::BACKOFF_BASE_NS;
        use smooth_storage::FaultConfig;
        let heap = table(2000, "flaky");
        let s = storage();
        // Low-probability transient faults: every page read that draws
        // a fault retries (deterministically) and succeeds, so the
        // query completes with exactly the fault-free rows while the
        // clock absorbs the backoff.
        s.set_faults(Some(FaultConfig::new(5).io_err(0.2)));
        let clock0 = s.clock().snapshot();
        let scheduler = Scheduler::new(4, 4);
        let out = scheduler.submit(scan_pipeline(&heap, &s, 0, 1000)).unwrap().wait().unwrap();
        assert_eq!(out.into_rows(), serial_rows(&heap, 0, 1000));
        let spent = s.clock().snapshot().since(&clock0);
        // At p = 0.2 over dozens of page reads some fault draws are
        // certain; each charges at least one base backoff to I/O.
        assert!(spent.io_ns >= BACKOFF_BASE_NS, "no retry backoff observed");
    }

    #[test]
    fn permanent_faults_exhaust_retries_into_typed_error() {
        use smooth_storage::{faults::RETRY_LIMIT, FaultConfig};
        let heap = table(2000, "doomed");
        let s = storage();
        s.set_faults(Some(FaultConfig::new(9).io_err(1.0)));
        let scheduler = Scheduler::new(2, 4);
        let err = scheduler.submit(scan_pipeline(&heap, &s, 0, 1000)).unwrap().wait().unwrap_err();
        assert!(matches!(err, Error::Faulted { attempts } if attempts == RETRY_LIMIT), "{err}");
    }
}
