//! Memory budgets and charged overflow-file I/O — the accounting layer
//! under larger-than-memory execution.
//!
//! The engine exposes one memory knob, `SMOOTH_MEM_BYTES`: the working
//! memory each *blocking operator instance* (a hash-join build, a sort)
//! of an active query may hold before it must spill, in the spirit of
//! PostgreSQL's `work_mem`. The budget is per operator rather than a
//! shared per-query pool on purpose: operator open order differs
//! between the serial and parallel drivers, so a shared pool would make
//! spill decisions — and therefore the virtual clock — depend on the
//! driver, breaking the engine-wide byte-identical accounting
//! invariant. `0` (the default) means unlimited; see
//! `docs/larger_than_memory.md` for the full ownership story.
//!
//! Spilling in this engine is *modeled the way all I/O is modeled*: an
//! overflow file is a real serialized byte buffer (the spill codec,
//! [`smooth_types::spill`]), but its transfer cost lands on the virtual
//! clock's I/O arm rather than a filesystem. [`spill_io_ns`] is the one
//! formula every overflow file in the engine pays — the grace hash
//! join's partition files, the external sort's runs, and the Smooth
//! Scan Result Cache's partition spills in `smooth-core` all route
//! through it. The shared invariant: one overflow-file transfer costs
//! one seek plus sequential page transfers of its byte length
//! (`ceil(bytes / PAGE_SIZE)` pages, minimum one) on the scan device,
//! charged to the clock's I/O lane and *never* to the disk-arm
//! counters — overflow files live beside the heap, not in it, so the
//! buffer pool, sequential/random classification and page counters are
//! unperturbed.

use std::sync::atomic::{AtomicIsize, Ordering};
use std::sync::OnceLock;

use smooth_storage::{DeviceProfile, Storage};
use smooth_types::{Result, PAGE_SIZE};

/// Per-operator memory budget in bytes: the `SMOOTH_MEM_BYTES`
/// environment variable, read **once per process** and latched (like
/// `SMOOTH_BATCH_ROWS`). `0` or unset means unlimited — no operator
/// ever spills. Tests and embedders override per instance via
/// `Database::set_mem_bytes` / the operators' `with_mem_budget`.
pub fn mem_budget_bytes() -> usize {
    static BYTES: OnceLock<usize> = OnceLock::new();
    *BYTES.get_or_init(|| {
        std::env::var("SMOOTH_MEM_BYTES").ok().and_then(|v| v.parse::<usize>().ok()).unwrap_or(0)
    })
}

/// Grace-join recursion fan-out: how many sub-partitions an overflowing
/// spilled partition re-partitions into. The `SMOOTH_SPILL_PARTITIONS`
/// environment variable (clamped to 2..=64, read once and latched),
/// default 8.
pub fn spill_partitions() -> usize {
    static PARTS: OnceLock<usize> = OnceLock::new();
    *PARTS.get_or_init(|| {
        std::env::var("SMOOTH_SPILL_PARTITIONS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map(|n| n.clamp(2, 64))
            .unwrap_or(8)
    })
}

/// Modeled cost of transferring one `bytes`-long overflow file (in
/// either direction): one seek plus sequential page transfers on
/// `device`. Zero bytes cost nothing — no file, no seek.
#[inline]
pub fn spill_io_ns(device: &DeviceProfile, bytes: u64) -> u64 {
    if bytes == 0 {
        return 0;
    }
    device.run_cost_ns(bytes.div_ceil(PAGE_SIZE as u64))
}

/// Charge one overflow-file transfer of `bytes` to the virtual clock's
/// I/O lane (never the disk-arm counters — see the module docs).
#[inline]
pub fn charge_spill_io(storage: &Storage, bytes: u64) {
    let ns = spill_io_ns(&storage.device(), bytes);
    if ns > 0 {
        storage.clock().charge_io(ns);
    }
}

/// Write one overflow file: fault-gate the write (the storage
/// instance's [`smooth_storage::FaultInjector`], if any, may retry
/// with backoff or fail it), charge the transfer, and wrap the bytes
/// as a [`SpillFile`]. Every operator spill should route through this
/// rather than pairing [`charge_spill_io`] with [`SpillFile::new`] by
/// hand, so injected `spill_err` faults cover all of them.
pub fn spill_write(storage: &Storage, data: Vec<u8>, rows: u64) -> Result<SpillFile> {
    storage.spill_fault_check(data.len() as u64, rows)?;
    charge_spill_io(storage, data.len() as u64);
    Ok(SpillFile::new(data, rows))
}

/// Overflow files alive in the process right now (created minus
/// dropped). Tests assert this returns to its baseline after a query
/// completes or fails — spill files must never leak past their query.
static LIVE_SPILL_FILES: AtomicIsize = AtomicIsize::new(0);

/// One overflow file: really-serialized tuple bytes (the
/// [`smooth_types::spill`] codec) held as a buffer, with its transfer
/// costs charged through [`charge_spill_io`] by the owning operator.
#[derive(Debug)]
pub struct SpillFile {
    data: Vec<u8>,
    rows: u64,
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        LIVE_SPILL_FILES.fetch_sub(1, Ordering::Relaxed);
    }
}

impl SpillFile {
    /// Wrap already-encoded rows as an overflow file (the caller
    /// charges the write through [`charge_spill_io`]; prefer
    /// [`spill_write`], which also fault-gates it).
    pub fn new(data: Vec<u8>, rows: u64) -> Self {
        LIVE_SPILL_FILES.fetch_add(1, Ordering::Relaxed);
        SpillFile { data, rows }
    }

    /// Number of [`SpillFile`]s alive in the process (for leak
    /// assertions in tests — a completed or failed query must leave
    /// this where it found it).
    pub fn live_count() -> isize {
        LIVE_SPILL_FILES.load(Ordering::Relaxed)
    }

    /// Serialized byte length.
    pub fn bytes_len(&self) -> u64 {
        self.data.len() as u64
    }

    /// Encoded row count.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// The raw encoded bytes.
    pub fn data(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spill_io_matches_result_cache_formula() {
        let dev = DeviceProfile::custom("t", 10, 1000);
        // The historical Result Cache formula: pages =
        // ceil(bytes / PAGE_SIZE).max(1), one seek + sequential run.
        for bytes in [1u64, 100, PAGE_SIZE as u64, PAGE_SIZE as u64 + 1, 10 * PAGE_SIZE as u64] {
            let pages = bytes.div_ceil(PAGE_SIZE as u64).max(1);
            assert_eq!(spill_io_ns(&dev, bytes), dev.run_cost_ns(pages));
        }
        assert_eq!(spill_io_ns(&dev, 0), 0);
    }

    #[test]
    fn charge_lands_on_io_not_disk_counters() {
        let storage = Storage::default_hdd();
        let clock0 = storage.clock().snapshot();
        let io0 = storage.io_snapshot();
        charge_spill_io(&storage, 3 * PAGE_SIZE as u64);
        let clock = storage.clock().snapshot().since(&clock0);
        assert_eq!(clock.io_ns, spill_io_ns(&storage.device(), 3 * PAGE_SIZE as u64));
        assert_eq!(clock.cpu_ns, 0);
        let io = storage.io_snapshot().since(&io0);
        assert_eq!(io.pages_read, 0);
        assert_eq!(io.io_requests, 0);
    }

    #[test]
    fn spill_write_charges_and_tracks_liveness() {
        let storage = Storage::default_hdd();
        let before_live = SpillFile::live_count();
        let clock0 = storage.clock().snapshot();
        let f = spill_write(&storage, vec![0u8; 1000], 10).unwrap();
        assert_eq!(f.bytes_len(), 1000);
        assert_eq!(f.rows(), 10);
        assert_eq!(SpillFile::live_count(), before_live + 1);
        let clock = storage.clock().snapshot().since(&clock0);
        assert_eq!(clock.io_ns, spill_io_ns(&storage.device(), 1000));
        drop(f);
        assert_eq!(SpillFile::live_count(), before_live);
    }

    #[test]
    fn spill_write_surfaces_injected_faults() {
        use smooth_storage::FaultConfig;
        let storage = Storage::default_hdd();
        storage.set_faults(Some(FaultConfig::new(3).spill_err(1.0)));
        let before_live = SpillFile::live_count();
        let clock0 = storage.clock().snapshot();
        let err = spill_write(&storage, vec![0u8; 1000], 10).unwrap_err();
        assert!(matches!(err, smooth_types::Error::Faulted { .. }));
        // The failed write charged only its retry backoff — not the
        // transfer — and created no file.
        let clock = storage.clock().snapshot().since(&clock0);
        assert_eq!(clock.io_ns, smooth_storage::faults::total_backoff_ns(3));
        assert_eq!(SpillFile::live_count(), before_live);
    }
}
