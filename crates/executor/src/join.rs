//! Join operators: Hash, Merge, Nested-Loop and Index-Nested-Loop.
//!
//! The TPC-H-style experiments exercise all four: the paper's Fig. 4
//! queries use nested-loop joins with primary-key index lookups (Q4, Q14),
//! hash joins (Q7) and merge joins fed by interesting orders — the
//! situation where Smooth Scan's order preservation matters (Section IV-B,
//! "Interaction with Other Operators").

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use smooth_index::BTreeIndex;
use smooth_storage::{HeapFile, Storage};
use smooth_types::{
    ColumnBatch, ColumnBuffer, ColumnVector, Error, Result, Row, RowBatch, Schema, Value,
};

use crate::expr::Predicate;
use crate::operator::{batch_size, BoxedOperator, Operator};
use crate::spill::{charge_spill_io, spill_partitions, spill_write, SpillFile};

/// Supported join semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Emit concatenated pairs for every match.
    Inner,
    /// Emit each left row once if at least one match exists (EXISTS).
    LeftSemi,
}

fn join_schema(left: &Schema, right: &Schema, ty: JoinType) -> Schema {
    match ty {
        JoinType::Inner => left.join(right),
        JoinType::LeftSemi => left.clone(),
    }
}

/// Hash partitions per build table. Fixed (rather than derived from the
/// worker count) so the serial and parallel builders produce structurally
/// identical tables; [`JoinBuildTable::with_partitions`] exists for tests
/// and future grace-join spilling.
pub const BUILD_PARTITIONS: usize = 64;

/// A reference to one build row: builder ordinal (the worker that ingested
/// it under the parallel partitioned build; always 0 for a serial build)
/// in the high 32 bits, row position within that builder's payload batch
/// in the low 32 bits.
pub type BuildRef = u64;

/// One hash partition's per-worker match lists before the merge: key →
/// `(global build position, local payload row)` entries, position-sorted
/// within one worker by construction.
pub type PartialPartition = HashMap<Value, Vec<(u64, u32)>>;

#[inline]
fn build_ref(builder: usize, row: usize) -> BuildRef {
    debug_assert!(builder < u32::MAX as usize && row <= u32::MAX as usize);
    ((builder as u64) << 32) | row as u64
}

#[inline]
fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Stable partition hash of a join key, consistent with [`Value`]'s
/// derived equality (equal keys always land in the same partition). Only
/// partitioning uses it; the per-partition maps hash with the std hasher.
#[inline]
fn key_partition(key: &Value, parts: usize) -> usize {
    key_partition_at(key, 0, parts)
}

/// [`key_partition`] salted by grace-recursion `level`: level 0 is the
/// top-level build partitioning, level `n ≥ 1` re-partitions an
/// overflowing spilled partition's keys independently of every level
/// above it (same FNV walk, level-perturbed offset basis).
#[inline]
fn key_partition_at(key: &Value, level: u32, parts: usize) -> usize {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    let offset = OFFSET ^ (level as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let h = match key {
        Value::Null => fnv(offset, &[0]),
        Value::Int(v) => fnv(fnv(offset, &[1]), &v.to_le_bytes()),
        Value::Float(v) => fnv(fnv(offset, &[2]), &v.to_bits().to_le_bytes()),
        Value::Str(s) => fnv(fnv(offset, &[3]), s.as_bytes()),
    };
    (h % parts as u64) as usize
}

/// Grace-recursion tree node for one spilled partition: modeled
/// sub-partition sizes for the charged repartition passes, plus
/// order-independent probe-overflow tallies the probe loop accumulates
/// (atomic sums, so parallel workers race freely without perturbing the
/// final charge).
struct GraceNode {
    /// Recursion level (the spilled top-level partition is level 0).
    level: u32,
    /// Encoded build bytes in this node's key range.
    bytes: u64,
    /// Build tuples in this node's key range.
    tuples: u64,
    /// `spill_partitions()` children when this node overflowed the
    /// budget and re-partitioned; empty for a leaf.
    children: Vec<GraceNode>,
    /// Probe rows routed through this node's key range (leaves only).
    probe_rows: AtomicU64,
    /// Encoded probe bytes routed through this node (leaves only).
    probe_bytes: AtomicU64,
}

/// Spill state of one over-budget [`JoinBuildTable`]: the per-partition
/// grace trees plus the really-serialized overflow files for the
/// spilled top-level partitions.
struct GraceSpill {
    /// Grace fan-out used by every recursion level.
    fanout: usize,
    /// `trees[p]` is `Some` exactly when top-level partition `p`
    /// spilled.
    trees: Vec<Option<GraceNode>>,
    /// Serialized overflow file per spilled top-level partition,
    /// parallel to `trees`.
    files: Vec<Option<SpillFile>>,
    /// One-shot latch for [`JoinBuildTable::finish_probe`].
    finished: AtomicBool,
}

/// The columnar build side of a hash join: hash-partitioned match lists
/// (key → build rows, in global build order) over payload rows stored as
/// typed [`ColumnVector`]s — no `Vec<Row>` anywhere. Payloads live in one
/// dense [`ColumnBatch`] per *builder* (one for a serial build, one per
/// worker under the parallel partitioned build), and a [`BuildRef`] names
/// a row as `(builder, position)`.
///
/// Probing gathers matched payload columns straight into the output
/// batch's vectors ([`JoinBuildTable::gather_payload`]); build ingest
/// moves `Text` buffers in by handoff ([`ColumnBatch::append_dense`] /
/// [`ColumnBatch::append_taken_row`]) rather than cloning per row.
///
/// # Partition lifecycle
///
/// Every build row lives in exactly one of [`BUILD_PARTITIONS`] hash
/// partitions from ingest to close:
///
/// 1. **Ingest** — [`JoinBuildTable::insert_batch`] (serial) or
///    [`JoinBuildPartial::fold`] (one per parallel worker) routes each
///    non-null key to `key_partition(key)` and appends its payload row.
/// 2. **Merge** — per-worker partials merge partition-wise
///    ([`JoinBuildTable::merge_partition`]) into match lists in global
///    build order; a serial build is already merged. From here the
///    table is byte-identical no matter which driver built it.
/// 3. **Budget** — [`JoinBuildTable::apply_budget`] sizes every
///    partition under the spill codec and, if the total exceeds the
///    operator's memory budget, spills whole partitions largest-first
///    (ties to the lowest index) until the retained set fits. A spilled
///    partition becomes an overflow file plus a grace tree: while a
///    (sub-)partition still exceeds the budget it re-partitions into
///    [`crate::spill::spill_partitions`] children under a level-salted
///    hash, and each repartition pass charges a re-read and re-write of
///    the bytes it moves.
/// 4. **Probe** — [`JoinBuildTable::probe_columns`] routes each probe
///    row whose key hashes to a spilled partition down that partition's
///    grace tree, tallying the probe-overflow bytes that must spool to
///    the partition's probe file (order-independent atomic sums).
/// 5. **Finalize** — [`JoinBuildTable::finish_probe`] (idempotent)
///    charges the deferred join passes: the probe overflow written,
///    re-partitioned alongside the build files, and each leaf pair
///    re-read to join.
///
/// Spilled partitions keep their match lists addressable — spilling is
/// a *charged accounting* state, like the Result Cache's partition
/// spills, so probe results stay byte-identical to the unbudgeted run
/// by construction while the virtual clock pays the full grace-join
/// I/O. See `docs/larger_than_memory.md`.
pub struct JoinBuildTable {
    /// `parts[key_partition(key)]` maps a key to its match list.
    parts: Vec<HashMap<Value, Vec<BuildRef>>>,
    /// Payload columns, one dense batch per builder.
    payloads: Vec<ColumnBatch>,
    /// Build-side schema (column typing of the payload batches).
    schema: Schema,
    key_col: usize,
    /// Budget-overflow state, set by [`JoinBuildTable::apply_budget`].
    spill: Option<GraceSpill>,
}

impl JoinBuildTable {
    /// An empty build table keyed on `key_col` of `schema`, with the
    /// default [`BUILD_PARTITIONS`] hash partitions.
    pub fn new(schema: &Schema, key_col: usize) -> Self {
        Self::with_partitions(schema, key_col, BUILD_PARTITIONS)
    }

    /// An empty build table with an explicit partition count (probe
    /// results are independent of it; the count only shapes the maps).
    pub fn with_partitions(schema: &Schema, key_col: usize, partitions: usize) -> Self {
        let partitions = partitions.max(1);
        JoinBuildTable {
            parts: (0..partitions).map(|_| HashMap::new()).collect(),
            payloads: vec![ColumnBatch::for_schema(schema)],
            schema: schema.clone(),
            key_col,
            spill: None,
        }
    }

    /// The build-side schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Key ordinal in the build rows.
    pub fn key_col(&self) -> usize {
        self.key_col
    }

    /// Hash partitions.
    pub fn partition_count(&self) -> usize {
        self.parts.len()
    }

    /// Total build rows stored (null-key rows are never stored).
    pub fn len(&self) -> usize {
        self.payloads.iter().map(|p| p.physical_rows()).sum()
    }

    /// `true` when no build row is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all contents, keeping the schema and partition shape.
    pub fn clear(&mut self) {
        for p in &mut self.parts {
            p.clear();
        }
        self.payloads = vec![ColumnBatch::for_schema(&self.schema)];
        self.spill = None;
    }

    /// Ingest one morsel of build input (the serial build path): null-key
    /// rows are dropped, everything else appends to the payload columns —
    /// dense batches by whole-buffer handoff, selected batches row-wise
    /// with string payloads *moved*, never cloned.
    pub fn insert_batch(&mut self, mut batch: ColumnBatch) -> Result<()> {
        if batch.width() != self.schema.len() {
            return Err(Error::exec(format!(
                "build batch of {} columns for a {}-column table",
                batch.width(),
                self.schema.len()
            )));
        }
        batch.column_checked(self.key_col)?;
        let JoinBuildTable { parts, payloads, key_col, .. } = self;
        let payload = &mut payloads[0];
        let dense_non_null =
            batch.selection().is_none() && !batch.column(*key_col).nulls().iter().any(|&null| null);
        if dense_non_null {
            // Fast path: every row survives, so the match lists index a
            // contiguous range and the payload buffers hand over whole.
            let base = payload.physical_rows();
            for i in 0..batch.physical_rows() {
                let key = batch.column(*key_col).value(i);
                let part = key_partition(&key, parts.len());
                parts[part].entry(key).or_default().push(build_ref(0, base + i));
            }
            payload.append_dense(batch);
        } else {
            for live in 0..batch.len() {
                let phys = match batch.selection() {
                    Some(sel) => sel[live] as usize,
                    None => live,
                };
                if batch.column(*key_col).is_null(phys) {
                    continue;
                }
                let key = batch.column(*key_col).value(phys);
                let part = key_partition(&key, parts.len());
                parts[part].entry(key).or_default().push(build_ref(0, payload.physical_rows()));
                payload.append_taken_row(&mut batch, phys);
            }
        }
        Ok(())
    }

    /// The match list for `key` (global build order), if any.
    #[inline]
    pub fn matches(&self, key: &Value) -> Option<&[BuildRef]> {
        self.parts[key_partition(key, self.parts.len())].get(key).map(Vec::as_slice)
    }

    /// Gather the payload row `r` into the parallel output vectors `out`
    /// (one per build column, typed like the schema).
    #[inline]
    pub fn gather_payload(&self, r: BuildRef, out: &mut [ColumnVector]) {
        let src = &self.payloads[(r >> 32) as usize];
        let row = (r & u32::MAX as u64) as usize;
        for (dst, s) in out.iter_mut().zip(src.columns()) {
            dst.push_from(s, row);
        }
    }

    /// Materialize the payload row `r` (strings clone) — the
    /// row-protocol fallback path only; columnar probes gather instead.
    pub fn payload_row(&self, r: BuildRef) -> Row {
        let src = &self.payloads[(r >> 32) as usize];
        let row = (r & u32::MAX as u64) as usize;
        Row::new(src.columns().iter().map(|c| c.value(row)).collect())
    }

    /// Probe one columnar morsel, gathering every match into `out`
    /// (typed `probe columns ++ payload columns` for an inner join,
    /// probe columns alone for a semi join): one hash charge per live
    /// probe row, one emit charge per produced match, matches in global
    /// build order, null probe keys skipped after the hash charge. Both
    /// the serial [`HashJoin`] and the parallel driver's probe stage
    /// call this — the probe charge model lives in exactly one place.
    pub fn probe_columns(
        &self,
        storage: &Storage,
        batch: &ColumnBatch,
        probe_col: usize,
        ty: JoinType,
        out: &mut ColumnBatch,
    ) -> Result<()> {
        let cpu = *storage.cpu();
        let clock = storage.clock();
        let left_width = batch.width();
        batch.column_checked(probe_col)?;
        for live in 0..batch.len() {
            let phys = match batch.selection() {
                Some(sel) => sel[live] as usize,
                None => live,
            };
            clock.charge_cpu(cpu.hash_op_ns);
            let col = batch.column(probe_col);
            if col.is_null(phys) {
                continue;
            }
            let key = col.value(phys);
            if self.spill.is_some() {
                self.note_probe_row(&key, batch, phys);
            }
            let Some(matches) = self.matches(&key) else { continue };
            match ty {
                JoinType::Inner => {
                    clock.charge_cpu(cpu.emit_tuple_ns * matches.len() as u64);
                    for &m in matches {
                        let cols = out.columns_mut();
                        for (c, dst) in cols.iter_mut().enumerate().take(left_width) {
                            dst.push_from(batch.column(c), phys);
                        }
                        self.gather_payload(m, &mut cols[left_width..]);
                        out.commit_rows(1);
                    }
                }
                JoinType::LeftSemi => {
                    clock.charge_cpu(cpu.emit_tuple_ns);
                    let cols = out.columns_mut();
                    for (c, dst) in cols.iter_mut().enumerate() {
                        dst.push_from(batch.column(c), phys);
                    }
                    out.commit_rows(1);
                }
            }
        }
        Ok(())
    }

    /// Merge one partition's per-worker maps (entry `w` built by worker
    /// `w`) into the final match lists: every key's matches are reordered
    /// by their recorded global build position `(morsel seq, row)` — the
    /// same first-seen-position rule the parallel aggregate sink uses —
    /// so the merged table is byte-identical to a serial build no matter
    /// which worker ingested which morsel.
    pub fn merge_partition(worker_maps: Vec<PartialPartition>) -> HashMap<Value, Vec<BuildRef>> {
        let mut merged: HashMap<Value, Vec<(u64, BuildRef)>> = HashMap::new();
        for (w, map) in worker_maps.into_iter().enumerate() {
            for (key, list) in map {
                merged
                    .entry(key)
                    .or_default()
                    .extend(list.into_iter().map(|(pos, row)| (pos, build_ref(w, row as usize))));
            }
        }
        merged
            .into_iter()
            .map(|(key, mut list)| {
                list.sort_unstable_by_key(|&(pos, _)| pos);
                (key, list.into_iter().map(|(_, r)| r).collect())
            })
            .collect()
    }

    /// Assemble a table from merged partitions plus the per-worker payload
    /// batches (`payloads[w]` ingested by worker `w`, matching the
    /// builder ordinals [`JoinBuildTable::merge_partition`] encodes).
    pub fn from_merged(
        schema: &Schema,
        key_col: usize,
        payloads: Vec<ColumnBatch>,
        parts: Vec<HashMap<Value, Vec<BuildRef>>>,
    ) -> Self {
        debug_assert!(!parts.is_empty());
        JoinBuildTable { parts, payloads, schema: schema.clone(), key_col, spill: None }
    }

    /// Encoded spill-codec bytes of build row `r`.
    #[inline]
    fn build_row_bytes(&self, r: BuildRef) -> u64 {
        let batch = &self.payloads[(r >> 32) as usize];
        smooth_types::spill::batch_row_len(batch, (r & u32::MAX as u64) as usize) as u64
    }

    /// Key of build row `r` (never NULL — null keys drop at ingest).
    #[inline]
    fn build_row_key(&self, r: BuildRef) -> Value {
        let batch = &self.payloads[(r >> 32) as usize];
        batch.column(self.key_col).value((r & u32::MAX as u64) as usize)
    }

    /// Enforce the operator memory budget on the fully-built (merged)
    /// table: size every partition under the spill codec and, while the
    /// retained total exceeds `budget_bytes`, spill whole partitions
    /// largest-first (ties to the lowest partition index) into charged
    /// overflow files, recursing on any partition that alone still
    /// exceeds the budget (see the type-level partition-lifecycle docs).
    /// A zero budget means unlimited: the call is free and charges
    /// nothing. Must run at exactly one deterministic point per build —
    /// after the serial build loop, or after the parallel partial merge
    /// — so every driver charges identical spill I/O.
    /// Fails only if a spilled partition's overflow-file write fails
    /// (injected `spill_err` faults that exhaust their retries); the
    /// table is left unspilled in that case.
    pub fn apply_budget(&mut self, storage: &Storage, budget_bytes: usize) -> Result<()> {
        self.spill = None;
        if budget_bytes == 0 || self.is_empty() {
            return Ok(());
        }
        let budget = budget_bytes as u64;
        let sizes: Vec<u64> = self
            .parts
            .iter()
            .map(|m| m.values().flatten().map(|&r| self.build_row_bytes(r)).sum())
            .collect();
        let total: u64 = sizes.iter().sum();
        if total <= budget {
            return Ok(());
        }
        // Spill order: largest partition first, ties to the lowest
        // index — deterministic, and frees the most memory per file.
        let mut order: Vec<usize> = (0..sizes.len()).filter(|&p| sizes[p] > 0).collect();
        order.sort_by_key(|&p| (std::cmp::Reverse(sizes[p]), p));
        let fanout = spill_partitions();
        let mut trees: Vec<Option<GraceNode>> = (0..sizes.len()).map(|_| None).collect();
        let mut files: Vec<Option<SpillFile>> = (0..sizes.len()).map(|_| None).collect();
        let mut retained = total;
        for p in order {
            if retained <= budget {
                break;
            }
            retained -= sizes[p];
            // Refs in global build order: the file contents — and the
            // recursion tree — are independent of map iteration order.
            let mut refs: Vec<BuildRef> = self.parts[p].values().flatten().copied().collect();
            refs.sort_unstable();
            let mut data = Vec::with_capacity(sizes[p] as usize);
            for &r in &refs {
                let batch = &self.payloads[(r >> 32) as usize];
                smooth_types::spill::encode_batch_row(
                    batch,
                    (r & u32::MAX as u64) as usize,
                    &mut data,
                );
            }
            // The initial spill writes the whole partition once
            // (fault-gated: a failed write fails the build) …
            files[p] = Some(spill_write(storage, data, refs.len() as u64)?);
            // … and every overflowing (sub-)partition re-reads and
            // re-writes its bytes per recursion level (charged inside).
            trees[p] = Some(self.grace_node(storage, &refs, sizes[p], 0, budget, fanout));
        }
        self.spill = Some(GraceSpill { fanout, trees, files, finished: AtomicBool::new(false) });
        Ok(())
    }

    /// Build (and charge) the grace tree over one spilled key range:
    /// an over-budget node re-partitions into `fanout` children under
    /// the next level's salted hash, paying one re-read of its bytes
    /// plus the re-write of every non-empty child. Recursion stops when
    /// a node fits the budget, stops shrinking (one dominant key), or
    /// hits a depth backstop.
    fn grace_node(
        &self,
        storage: &Storage,
        refs: &[BuildRef],
        bytes: u64,
        level: u32,
        budget: u64,
        fanout: usize,
    ) -> GraceNode {
        const MAX_LEVELS: u32 = 12;
        let leaf = GraceNode {
            level,
            bytes,
            tuples: refs.len() as u64,
            children: Vec::new(),
            probe_rows: AtomicU64::new(0),
            probe_bytes: AtomicU64::new(0),
        };
        if bytes <= budget || refs.len() <= 1 || level >= MAX_LEVELS {
            return leaf;
        }
        let mut buckets: Vec<Vec<BuildRef>> = (0..fanout).map(|_| Vec::new()).collect();
        let mut bucket_bytes = vec![0u64; fanout];
        for &r in refs {
            let b = key_partition_at(&self.build_row_key(r), level + 1, fanout);
            buckets[b].push(r);
            bucket_bytes[b] += self.build_row_bytes(r);
        }
        if bucket_bytes.contains(&bytes) {
            // One key range dominates: re-partitioning cannot shrink it.
            return leaf;
        }
        // Repartition pass: re-read this node, re-write the children.
        charge_spill_io(storage, bytes);
        for &b in &bucket_bytes {
            charge_spill_io(storage, b);
        }
        let children = buckets
            .into_iter()
            .zip(bucket_bytes)
            .map(|(refs, b)| self.grace_node(storage, &refs, b, level + 1, budget, fanout))
            .collect();
        GraceNode { children, ..leaf }
    }

    /// Route one probe row through the grace tree of its (spilled)
    /// partition, tallying the probe-overflow bytes its partition's
    /// probe file must spool. Atomic sums: callers may race.
    #[inline]
    fn note_probe_row(&self, key: &Value, batch: &ColumnBatch, phys: usize) {
        let Some(spill) = &self.spill else { return };
        let Some(root) = &spill.trees[key_partition(key, self.parts.len())] else { return };
        let mut node = root;
        while !node.children.is_empty() {
            node = &node.children[key_partition_at(key, node.level + 1, spill.fanout)];
        }
        let bytes = smooth_types::spill::batch_row_len(batch, phys) as u64;
        node.probe_rows.fetch_add(1, Ordering::Relaxed);
        node.probe_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Charge the deferred grace passes once the probe input is fully
    /// consumed: per spilled partition, the probe overflow is written,
    /// re-partitioned level by level alongside the build files, and
    /// every leaf pair (build bytes + probe bytes) is re-read for the
    /// final join pass. Idempotent — the first caller wins — and
    /// charge-free when nothing spilled, so every driver may call it
    /// defensively at probe completion.
    /// Fails only if spooling a partition's probe-overflow file fails
    /// (injected `spill_err` faults — the spool is a spill write).
    pub fn finish_probe(&self, storage: &Storage) -> Result<()> {
        let Some(spill) = &self.spill else { return Ok(()) };
        if spill.finished.swap(true, Ordering::AcqRel) {
            return Ok(());
        }
        for root in spill.trees.iter().flatten() {
            // Probe overflow spools to the partition's probe file once.
            let bytes = Self::probe_subtree_bytes(root);
            if bytes > 0 {
                storage.spill_fault_check(bytes, Self::probe_subtree_rows(root))?;
            }
            charge_spill_io(storage, bytes);
            Self::finish_node(root, storage);
        }
        Ok(())
    }

    /// Total probe rows routed at or below `node`.
    fn probe_subtree_rows(node: &GraceNode) -> u64 {
        if node.children.is_empty() {
            node.probe_rows.load(Ordering::Relaxed)
        } else {
            node.children.iter().map(Self::probe_subtree_rows).sum()
        }
    }

    /// Total probe bytes routed at or below `node`.
    fn probe_subtree_bytes(node: &GraceNode) -> u64 {
        if node.children.is_empty() {
            node.probe_bytes.load(Ordering::Relaxed)
        } else {
            node.children.iter().map(Self::probe_subtree_bytes).sum()
        }
    }

    /// Deferred-pass charges below one spilled partition root: internal
    /// nodes re-read and re-write the probe bytes they re-partition
    /// (mirroring the build-side passes already charged at build time);
    /// leaves re-read their build and probe files to join.
    fn finish_node(node: &GraceNode, storage: &Storage) {
        if node.children.is_empty() {
            charge_spill_io(storage, node.bytes);
            charge_spill_io(storage, node.probe_bytes.load(Ordering::Relaxed));
            return;
        }
        charge_spill_io(storage, Self::probe_subtree_bytes(node));
        for c in &node.children {
            charge_spill_io(storage, Self::probe_subtree_bytes(c));
            Self::finish_node(c, storage);
        }
    }

    /// Number of top-level partitions currently spilled (0 when the
    /// table fits its budget).
    pub fn spilled_partition_count(&self) -> usize {
        self.spill.as_ref().map_or(0, |s| s.trees.iter().flatten().count())
    }

    /// Encoded bytes written by the initial partition spills (the
    /// overflow files' total length; recursion re-writes not included).
    pub fn spilled_build_bytes(&self) -> u64 {
        self.spill.as_ref().map_or(0, |s| s.files.iter().flatten().map(SpillFile::bytes_len).sum())
    }

    /// Build tuples living in spilled partitions (0 when the table fits
    /// its budget).
    pub fn spilled_build_rows(&self) -> u64 {
        self.spill.as_ref().map_or(0, |s| s.trees.iter().flatten().map(|t| t.tuples).sum())
    }

    /// The spilled partitions' overflow files (partition index, file),
    /// for inspection by tests and experiments.
    pub fn spill_files(&self) -> impl Iterator<Item = (usize, &SpillFile)> {
        self.spill
            .iter()
            .flat_map(|s| s.files.iter().enumerate())
            .filter_map(|(p, f)| f.as_ref().map(|f| (p, f)))
    }
}

/// A per-worker partial build for the parallel partitioned hash-join
/// build: payload rows in claim order plus hash-partitioned match lists
/// keyed by global build position `(morsel seq << 32 | row-in-morsel)`.
pub struct JoinBuildPartial {
    payload: ColumnBatch,
    parts: Vec<PartialPartition>,
    key_col: usize,
}

impl JoinBuildPartial {
    /// An empty partial for one worker.
    pub fn new(schema: &Schema, key_col: usize, partitions: usize) -> Self {
        JoinBuildPartial {
            payload: ColumnBatch::for_schema(schema),
            parts: (0..partitions.max(1)).map(|_| HashMap::new()).collect(),
            key_col,
        }
    }

    /// Fold one claimed build morsel in; `seq` is the morsel's global
    /// source sequence number. Null-key rows drop; `Text` payloads move.
    pub fn fold(&mut self, seq: u64, mut batch: ColumnBatch) -> Result<()> {
        batch.column_checked(self.key_col)?;
        let JoinBuildPartial { payload, parts, key_col } = self;
        for live in 0..batch.len() {
            let phys = match batch.selection() {
                Some(sel) => sel[live] as usize,
                None => live,
            };
            if batch.column(*key_col).is_null(phys) {
                continue;
            }
            let key = batch.column(*key_col).value(phys);
            let part = key_partition(&key, parts.len());
            let pos = (seq << 32) | live as u64;
            parts[part].entry(key).or_default().push((pos, payload.physical_rows() as u32));
            payload.append_taken_row(&mut batch, phys);
        }
        Ok(())
    }

    /// Decompose into the payload batch and the partitioned position maps.
    pub fn into_parts(self) -> (ColumnBatch, Vec<PartialPartition>) {
        (self.payload, self.parts)
    }

    /// Convert a *single* builder's partial straight into a table. The
    /// match lists re-sort by their global-position tags before the
    /// tags strip: a lone inline worker folds morsels in sequence (the
    /// sort is a no-op), but under the scheduler the partial slots are
    /// a shared pool, so one slot can receive morsels out of sequence
    /// when workers interleave — the sort restores global build order
    /// either way.
    pub fn into_table(self, schema: &Schema) -> JoinBuildTable {
        let JoinBuildPartial { payload, parts, key_col } = self;
        let parts = parts
            .into_iter()
            .map(|map| {
                map.into_iter()
                    .map(|(key, mut list)| {
                        list.sort_unstable_by_key(|&(pos, _)| pos);
                        (key, list.into_iter().map(|(_, row)| build_ref(0, row as usize)).collect())
                    })
                    .collect()
            })
            .collect();
        JoinBuildTable {
            parts,
            payloads: vec![payload],
            schema: schema.clone(),
            key_col,
            spill: None,
        }
    }
}

/// Hash join: blocking build over the right input, streaming probe from the
/// left input. Equi-join on one column per side.
///
/// Columnar-native end to end: the build side lives in a
/// [`JoinBuildTable`] (typed key map over payload column vectors — no
/// `Vec<Row>`), probes read keys vector-at-a-time off the probe batch's
/// key column, and matches gather left and right payload columns directly
/// into the output batch without ever concatenating `Row`s. All three
/// iterator protocols drain one [`ColumnBuffer`] FIFO, so they interleave
/// freely on a single probe order.
pub struct HashJoin {
    left: BoxedOperator,
    right: BoxedOperator,
    left_col: usize,
    ty: JoinType,
    storage: Storage,
    schema: Schema,
    table: JoinBuildTable,
    /// Per-operator memory budget in bytes (0 = unlimited); the build
    /// table spills to overflow files beyond it.
    mem_bytes: usize,
    /// Pending join output (filled by whole probe morsels, drained by
    /// whichever protocol the parent speaks).
    out: ColumnBuffer,
}

impl HashJoin {
    /// `left.left_col = right.right_col`; the right side is materialized
    /// into the hash table. The memory budget defaults to the
    /// process-wide [`crate::spill::mem_budget_bytes`] knob.
    pub fn new(
        left: BoxedOperator,
        right: BoxedOperator,
        left_col: usize,
        right_col: usize,
        ty: JoinType,
        storage: Storage,
    ) -> Self {
        let schema = join_schema(left.schema(), right.schema(), ty);
        let table = JoinBuildTable::new(right.schema(), right_col);
        let out = ColumnBuffer::for_schema(&schema);
        let mem_bytes = crate::spill::mem_budget_bytes();
        HashJoin { left, right, left_col, ty, storage, schema, table, mem_bytes, out }
    }

    /// Builder: override the operator memory budget (0 = unlimited).
    pub fn with_mem_budget(mut self, bytes: usize) -> Self {
        self.mem_bytes = bytes;
        self
    }

    /// Pull one probe morsel from the left child and run it through the
    /// shared probe loop ([`JoinBuildTable::probe_columns`] — the same
    /// code the parallel driver's probe stage runs), gathering matches
    /// into the output buffer. Returns `false` at probe-side exhaustion.
    fn advance(&mut self, max: usize) -> Result<bool> {
        match self.left.next_columns(max)? {
            Some(batch) => {
                self.table.probe_columns(
                    &self.storage,
                    &batch,
                    self.left_col,
                    self.ty,
                    self.out.fill(),
                )?;
                Ok(true)
            }
            None => {
                // Probe input fully consumed: charge the deferred grace
                // passes (idempotent; free when nothing spilled).
                self.table.finish_probe(&self.storage)?;
                Ok(false)
            }
        }
    }
}

impl Operator for HashJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.left.open()?;
        self.right.open()?;
        self.table.clear();
        self.out.reset();
        let cpu_hash = self.storage.cpu().hash_op_ns;
        // Blocking build, drained morsel-at-a-time with bulk clock
        // charges; payload columns ingest by buffer handoff.
        while let Some(batch) = self.right.next_columns(batch_size())? {
            self.storage.clock().charge_cpu(cpu_hash * batch.len() as u64);
            self.table.insert_batch(batch)?;
        }
        self.right.close()?;
        self.table.apply_budget(&self.storage, self.mem_bytes)?;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>> {
        loop {
            if let Some(row) = self.out.pop_row() {
                return Ok(Some(row));
            }
            if !self.advance(batch_size())? {
                return Ok(None);
            }
        }
    }

    /// Vectorized probe: whole probe morsels fill the output buffer, up
    /// to `max` rows leave per call.
    fn next_batch(&mut self, max: usize) -> Result<Option<RowBatch>> {
        let max = max.max(1);
        while self.out.pending() < max {
            if !self.advance(max)? {
                break;
            }
        }
        let rows = self.out.pop_rows(max);
        Ok((!rows.is_empty()).then(|| RowBatch::from_rows(rows)))
    }

    /// Columnar probe: keys are read vector-at-a-time off the left key
    /// column; on a hit the left columns and the matched payload columns
    /// gather straight into the output vectors — no `Row` materializes
    /// anywhere, and misses cost one hash probe and nothing else.
    fn next_columns(&mut self, max: usize) -> Result<Option<ColumnBatch>> {
        let max = max.max(1);
        while self.out.pending() < max {
            if !self.advance(max)? {
                break;
            }
        }
        Ok(self.out.pop_columns(max))
    }

    fn close(&mut self) -> Result<()> {
        self.table.finish_probe(&self.storage)?;
        self.table.clear();
        self.out.reset();
        self.left.close()
    }

    fn label(&self) -> String {
        format!("HashJoin({:?}) [{} ⋈ {}]", self.ty, self.left.label(), self.right.label())
    }
}

/// Merge join over inputs already sorted on their join columns (inner only).
///
/// Keeps the default (row-looping) `next_batch`: the merge frontier
/// advances one key group at a time, so there is no page- or batch-shaped
/// unit of work to amortize — vectorizing it would only buffer rows it
/// already buffers.
pub struct MergeJoin {
    left: BoxedOperator,
    right: BoxedOperator,
    left_col: usize,
    right_col: usize,
    storage: Storage,
    schema: Schema,
    left_row: Option<Row>,
    right_row: Option<Row>,
    /// The buffered group of right rows sharing the current key.
    right_group: Vec<Row>,
    group_key: Option<Value>,
    group_pos: usize,
    started: bool,
}

impl MergeJoin {
    /// `left.left_col = right.right_col`, both inputs ascending on the key.
    pub fn new(
        left: BoxedOperator,
        right: BoxedOperator,
        left_col: usize,
        right_col: usize,
        storage: Storage,
    ) -> Self {
        let schema = join_schema(left.schema(), right.schema(), JoinType::Inner);
        MergeJoin {
            left,
            right,
            left_col,
            right_col,
            storage,
            schema,
            left_row: None,
            right_row: None,
            right_group: Vec::new(),
            group_key: None,
            group_pos: 0,
            started: false,
        }
    }

    fn fill_right_group(&mut self, key: &Value) -> Result<()> {
        self.right_group.clear();
        self.group_key = Some(key.clone());
        self.group_pos = 0;
        loop {
            match &self.right_row {
                Some(r) if r.get(self.right_col) == key => {
                    self.right_group.push(r.clone());
                    self.right_row = self.right.next()?;
                }
                _ => break,
            }
        }
        Ok(())
    }
}

impl Operator for MergeJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.left.open()?;
        self.right.open()?;
        self.left_row = None;
        self.right_row = None;
        self.right_group.clear();
        self.group_key = None;
        self.group_pos = 0;
        self.started = false;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>> {
        if !self.started {
            self.left_row = self.left.next()?;
            self.right_row = self.right.next()?;
            self.started = true;
        }
        loop {
            let Some(left_row) = self.left_row.clone() else { return Ok(None) };
            let lkey = left_row.get(self.left_col).clone();
            // Emit from the buffered group if it matches the current key.
            if self.group_key.as_ref() == Some(&lkey) {
                if self.group_pos < self.right_group.len() {
                    let out = left_row.concat(&self.right_group[self.group_pos]);
                    self.group_pos += 1;
                    self.storage.clock().charge_cpu(self.storage.cpu().emit_tuple_ns);
                    return Ok(Some(out));
                }
                // group exhausted for this left row: advance left, replay group
                self.left_row = self.left.next()?;
                self.group_pos = 0;
                continue;
            }
            self.storage.clock().charge_cpu(self.storage.cpu().sort_cmp_ns);
            // Advance right until its key >= left key, then build the group.
            loop {
                match &self.right_row {
                    Some(r) if r.get(self.right_col).total_cmp(&lkey).is_lt() => {
                        self.storage.clock().charge_cpu(self.storage.cpu().sort_cmp_ns);
                        self.right_row = self.right.next()?;
                    }
                    _ => break,
                }
            }
            match &self.right_row {
                Some(r) if *r.get(self.right_col) == lkey => {
                    self.fill_right_group(&lkey.clone())?;
                }
                _ => {
                    // No right match: skip this left row. Reset the group so
                    // stale buffers never replay for a later key.
                    self.group_key = None;
                    self.right_group.clear();
                    self.left_row = self.left.next()?;
                }
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        self.right_group.clear();
        self.left.close()?;
        self.right.close()
    }

    fn label(&self) -> String {
        format!("MergeJoin [{} ⋈ {}]", self.left.label(), self.right.label())
    }
}

/// Naive nested-loop join with an arbitrary pair predicate (theta join);
/// the right side is materialized once.
pub struct NestedLoopJoin {
    left: BoxedOperator,
    right: BoxedOperator,
    /// Evaluated over the concatenated pair.
    predicate: Predicate,
    ty: JoinType,
    storage: Storage,
    schema: Schema,
    right_rows: Vec<Row>,
    left_row: Option<Row>,
    right_pos: usize,
}

impl NestedLoopJoin {
    /// Join where `predicate` is evaluated over `left ++ right` rows.
    pub fn new(
        left: BoxedOperator,
        right: BoxedOperator,
        predicate: Predicate,
        ty: JoinType,
        storage: Storage,
    ) -> Self {
        let schema = join_schema(left.schema(), right.schema(), ty);
        NestedLoopJoin {
            left,
            right,
            predicate,
            ty,
            storage,
            schema,
            right_rows: Vec::new(),
            left_row: None,
            right_pos: 0,
        }
    }
}

impl Operator for NestedLoopJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.left.open()?;
        self.right.open()?;
        self.right_rows.clear();
        while let Some(batch) = self.right.next_batch(batch_size())? {
            self.right_rows.extend(batch.into_rows());
        }
        self.right.close()?;
        self.left_row = None;
        self.right_pos = 0;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>> {
        loop {
            if self.left_row.is_none() {
                self.left_row = self.left.next()?;
                self.right_pos = 0;
                if self.left_row.is_none() {
                    return Ok(None);
                }
            }
            let left_row = self.left_row.as_ref().unwrap().clone();
            while self.right_pos < self.right_rows.len() {
                let pair = left_row.concat(&self.right_rows[self.right_pos]);
                self.right_pos += 1;
                self.storage.clock().charge_cpu(self.storage.cpu().inspect_tuple_ns);
                if self.predicate.eval(&pair)? {
                    self.storage.clock().charge_cpu(self.storage.cpu().emit_tuple_ns);
                    match self.ty {
                        JoinType::Inner => return Ok(Some(pair)),
                        JoinType::LeftSemi => {
                            self.left_row = None;
                            return Ok(Some(left_row));
                        }
                    }
                }
            }
            self.left_row = None;
        }
    }

    fn close(&mut self) -> Result<()> {
        self.right_rows.clear();
        self.left.close()
    }

    fn label(&self) -> String {
        format!("NestedLoopJoin({:?}) [{} ⋈ {}]", self.ty, self.left.label(), self.right.label())
    }
}

/// Index nested-loop join: for each outer row, probe the inner table's
/// B+-tree and fetch matching heap tuples ("a parameterized path",
/// Section IV-B). The inner fetches are random heap I/O — the pattern that
/// destroys Q12/Q19 in Fig. 1 when the outer cardinality is underestimated.
pub struct IndexNestedLoopJoin {
    outer: BoxedOperator,
    outer_col: usize,
    inner_heap: Arc<HeapFile>,
    inner_index: Arc<BTreeIndex>,
    inner_residual: Predicate,
    ty: JoinType,
    storage: Storage,
    schema: Schema,
    pending: Vec<Row>,
    /// Outer rows pulled in batches, consumed front-to-back.
    outer_buf: VecDeque<Row>,
}

impl IndexNestedLoopJoin {
    /// `outer.outer_col = inner.indexed_col` via `inner_index`.
    pub fn new(
        outer: BoxedOperator,
        outer_col: usize,
        inner_heap: Arc<HeapFile>,
        inner_index: Arc<BTreeIndex>,
        inner_residual: Predicate,
        ty: JoinType,
        storage: Storage,
    ) -> Self {
        let schema = join_schema(outer.schema(), inner_heap.schema(), ty);
        IndexNestedLoopJoin {
            outer,
            outer_col,
            inner_heap,
            inner_index,
            inner_residual,
            ty,
            storage,
            schema,
            pending: Vec::new(),
            outer_buf: VecDeque::new(),
        }
    }

    /// Next outer row: buffered batch first, then the child row protocol.
    fn next_outer(&mut self) -> Result<Option<Row>> {
        if let Some(row) = self.outer_buf.pop_front() {
            return Ok(Some(row));
        }
        self.outer.next()
    }

    /// Probe the inner index for one outer row. Inner matches queue in
    /// `pending` (reversed, so `pop()` preserves TID order); a semi match
    /// returns the outer row directly.
    fn probe(&mut self, outer_row: Row) -> Result<Option<Row>> {
        let key = match outer_row.get(self.outer_col) {
            Value::Int(k) => *k,
            Value::Null => return Ok(None),
            other => return Err(Error::exec(format!("INLJ key must be integer, got {other}"))),
        };
        let tids = self.inner_index.probe(&self.storage, key);
        let cpu = *self.storage.cpu();
        let mut matched = false;
        let mut matches: Vec<Row> = Vec::new();
        for tid in tids {
            let page = self.storage.read_heap_page(&self.inner_heap, tid.page)?;
            self.storage.clock().charge_cpu(cpu.inspect_tuple_ns);
            let inner_row = self.inner_heap.decode_slot(&page, tid.slot)?;
            if self.inner_residual.eval(&inner_row)? {
                matched = true;
                if self.ty == JoinType::LeftSemi {
                    break;
                }
                self.storage.clock().charge_cpu(cpu.emit_tuple_ns);
                matches.push(outer_row.concat(&inner_row));
            }
        }
        match self.ty {
            JoinType::Inner => {
                debug_assert!(self.pending.is_empty(), "probe with undrained pending rows");
                matches.reverse();
                self.pending = matches;
                Ok(None)
            }
            JoinType::LeftSemi => {
                if matched {
                    self.storage.clock().charge_cpu(cpu.emit_tuple_ns);
                    Ok(Some(outer_row))
                } else {
                    Ok(None)
                }
            }
        }
    }
}

impl Operator for IndexNestedLoopJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.outer.open()?;
        self.pending.clear();
        self.outer_buf.clear();
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>> {
        loop {
            if let Some(row) = self.pending.pop() {
                return Ok(Some(row));
            }
            let Some(outer_row) = self.next_outer()? else { return Ok(None) };
            if let Some(row) = self.probe(outer_row)? {
                return Ok(Some(row));
            }
        }
    }

    /// Vectorized probe loop: outer rows arrive in batches, join output
    /// leaves in batches of up to `max`.
    fn next_batch(&mut self, max: usize) -> Result<Option<RowBatch>> {
        let max = max.max(1);
        let mut out = Vec::new();
        loop {
            while out.len() < max {
                match self.pending.pop() {
                    Some(row) => out.push(row),
                    None => break,
                }
            }
            if out.len() >= max {
                break;
            }
            if self.outer_buf.is_empty() {
                match self.outer.next_batch(max)? {
                    Some(batch) => self.outer_buf.extend(batch.into_rows()),
                    None => break,
                }
            }
            let Some(outer_row) = self.outer_buf.pop_front() else { break };
            if let Some(row) = self.probe(outer_row)? {
                out.push(row);
            }
        }
        Ok((!out.is_empty()).then(|| RowBatch::from_rows(out)))
    }

    fn close(&mut self) -> Result<()> {
        self.pending.clear();
        self.outer_buf.clear();
        self.outer.close()
    }

    fn label(&self) -> String {
        format!(
            "IndexNestedLoopJoin({:?}) [{} ⋈ {} via {}]",
            self.ty,
            self.outer.label(),
            self.inner_heap.name(),
            self.inner_index.name()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{collect_rows, ValuesOp};
    use smooth_storage::HeapLoader;
    use smooth_types::{Column, DataType};

    fn schema(names: &[&str]) -> Schema {
        Schema::new(names.iter().map(|n| Column::new(*n, DataType::Int64)).collect()).unwrap()
    }

    fn values(name_a: &str, name_b: &str, rows: Vec<(i64, i64)>) -> BoxedOperator {
        Box::new(ValuesOp::new(
            schema(&[name_a, name_b]),
            rows.into_iter().map(|(a, b)| Row::new(vec![Value::Int(a), Value::Int(b)])).collect(),
        ))
    }

    fn storage() -> Storage {
        Storage::default_hdd()
    }

    fn pairs(rows: &[Row]) -> Vec<Vec<i64>> {
        rows.iter().map(|r| r.values().iter().map(|v| v.as_int().unwrap()).collect()).collect()
    }

    #[test]
    fn hash_join_inner_matches() {
        let left = values("a", "k", vec![(1, 10), (2, 20), (3, 30), (4, 20)]);
        let right = values("k2", "b", vec![(20, 100), (20, 200), (30, 300)]);
        let mut j = HashJoin::new(left, right, 1, 0, JoinType::Inner, storage());
        let mut rows = pairs(&collect_rows(&mut j).unwrap());
        rows.sort();
        assert_eq!(
            rows,
            vec![
                vec![2, 20, 20, 100],
                vec![2, 20, 20, 200],
                vec![3, 30, 30, 300],
                vec![4, 20, 20, 100],
                vec![4, 20, 20, 200],
            ]
        );
    }

    #[test]
    fn hash_join_semi_emits_left_once() {
        let left = values("a", "k", vec![(1, 10), (2, 20), (3, 30)]);
        let right = values("k2", "b", vec![(20, 1), (20, 2), (20, 3)]);
        let mut j = HashJoin::new(left, right, 1, 0, JoinType::LeftSemi, storage());
        let rows = collect_rows(&mut j).unwrap();
        assert_eq!(pairs(&rows), vec![vec![2, 20]]);
        assert_eq!(j.schema().len(), 2);
    }

    #[test]
    fn merge_join_handles_duplicate_groups() {
        let left = values("k", "a", vec![(1, 0), (2, 1), (2, 2), (5, 3)]);
        let right = values("k2", "b", vec![(0, 9), (2, 10), (2, 11), (4, 12), (5, 13)]);
        let mut j = MergeJoin::new(left, right, 0, 0, storage());
        let rows = pairs(&collect_rows(&mut j).unwrap());
        assert_eq!(
            rows,
            vec![
                vec![2, 1, 2, 10],
                vec![2, 1, 2, 11],
                vec![2, 2, 2, 10],
                vec![2, 2, 2, 11],
                vec![5, 3, 5, 13],
            ]
        );
    }

    #[test]
    fn merge_join_empty_sides() {
        let mut j = MergeJoin::new(
            values("k", "a", vec![]),
            values("k2", "b", vec![(1, 1)]),
            0,
            0,
            storage(),
        );
        assert!(collect_rows(&mut j).unwrap().is_empty());
        let mut j = MergeJoin::new(
            values("k", "a", vec![(1, 1)]),
            values("k2", "b", vec![]),
            0,
            0,
            storage(),
        );
        assert!(collect_rows(&mut j).unwrap().is_empty());
    }

    #[test]
    fn nested_loop_theta_join() {
        // join on left.a < right.b, expressed over the concatenated row —
        // realized here as NOT(b <= a) via per-pair evaluation; we use a
        // range check helper instead: pair passes when col0 < col3.
        let left = values("a", "x", vec![(1, 0), (5, 0)]);
        let right = values("y", "b", vec![(0, 3), (0, 10)]);
        // Predicate: col3 (b) > col0 (a) can't be expressed directly by the
        // IntRange variants over two columns, so emulate with Or/And of
        // fixed ranges per this small domain — instead test equi via NLJ.
        let mut j = NestedLoopJoin::new(left, right, Predicate::True, JoinType::Inner, storage());
        let rows = collect_rows(&mut j).unwrap();
        assert_eq!(rows.len(), 4); // cross product under True
        assert_eq!(j.schema().len(), 4);
    }

    #[test]
    fn inlj_fetches_inner_rows_through_the_index() {
        // Inner table: 500 rows, key = i (unique) plus payload.
        let inner_schema = schema(&["pk", "payload"]);
        let mut l = HeapLoader::new_mem("inner", inner_schema);
        for i in 0..500i64 {
            l.push(&Row::new(vec![Value::Int(i), Value::Int(i * 2)])).unwrap();
        }
        let heap = Arc::new(l.finish().unwrap());
        let index = Arc::new(BTreeIndex::build_from_heap("pk_idx", &heap, 0).unwrap());
        let outer = values("a", "fk", vec![(0, 3), (1, 499), (2, 1000)]);
        let mut j = IndexNestedLoopJoin::new(
            outer,
            1,
            heap,
            index,
            Predicate::True,
            JoinType::Inner,
            storage(),
        );
        let rows = pairs(&collect_rows(&mut j).unwrap());
        assert_eq!(rows, vec![vec![0, 3, 3, 6], vec![1, 499, 499, 998]]);
    }

    #[test]
    fn inlj_semi_join() {
        let inner_schema = schema(&["pk", "payload"]);
        let mut l = HeapLoader::new_mem("inner", inner_schema);
        for i in 0..100i64 {
            l.push(&Row::new(vec![Value::Int(i), Value::Int(0)])).unwrap();
        }
        let heap = Arc::new(l.finish().unwrap());
        let index = Arc::new(BTreeIndex::build_from_heap("pk_idx", &heap, 0).unwrap());
        let outer = values("a", "fk", vec![(7, 50), (8, 200)]);
        let mut j = IndexNestedLoopJoin::new(
            outer,
            1,
            heap,
            index,
            Predicate::True,
            JoinType::LeftSemi,
            storage(),
        );
        let rows = pairs(&collect_rows(&mut j).unwrap());
        assert_eq!(rows, vec![vec![7, 50]]);
    }

    #[test]
    fn build_table_drops_null_keys_and_keeps_duplicates_in_order() {
        let s =
            Schema::new(vec![Column::new("k", DataType::Int64), Column::new("v", DataType::Int64)])
                .unwrap();
        let rows = [
            Row::new(vec![Value::Int(7), Value::Int(0)]),
            Row::new(vec![Value::Null, Value::Int(1)]),
            Row::new(vec![Value::Int(7), Value::Int(2)]),
            Row::new(vec![Value::Int(3), Value::Int(3)]),
            Row::new(vec![Value::Int(7), Value::Int(4)]),
        ];
        let mut table = JoinBuildTable::new(&s, 0);
        // Two morsels, so match lists span ingest boundaries.
        table.insert_batch(ColumnBatch::from_rows(&s, &rows[..2]).unwrap()).unwrap();
        table.insert_batch(ColumnBatch::from_rows(&s, &rows[2..]).unwrap()).unwrap();
        assert_eq!(table.len(), 4, "null-key row is never stored");
        assert!(table.matches(&Value::Null).is_none());
        assert!(table.matches(&Value::Int(99)).is_none());
        let dup = table.matches(&Value::Int(7)).unwrap().to_vec();
        assert_eq!(dup.len(), 3);
        // Gather in build order: payload v column must read 0, 2, 4.
        let vs: Vec<i64> = dup.iter().map(|&r| table.payload_row(r).int(1).unwrap()).collect();
        assert_eq!(vs, vec![0, 2, 4]);
        assert_eq!(table.matches(&Value::Int(3)).unwrap().len(), 1);
    }

    #[test]
    fn empty_build_yields_no_matches_and_empty_join() {
        let left = values("a", "k", vec![(1, 10), (2, 20)]);
        let right = values("k2", "b", vec![]);
        let mut j = HashJoin::new(left, right, 1, 0, JoinType::Inner, storage());
        assert!(collect_rows(&mut j).unwrap().is_empty());
        let s = schema(&["k", "v"]);
        let table = JoinBuildTable::new(&s, 0);
        assert!(table.is_empty());
        assert!(table.matches(&Value::Int(0)).is_none());
    }

    #[test]
    fn text_payloads_hand_off_without_clones_and_survive_probes() {
        // Dense ingest moves the Text buffers into the payload vectors
        // (the source batch is consumed); selected ingest moves row-wise.
        let s = Schema::new(vec![
            Column::new("k", DataType::Int64),
            Column::new("name", DataType::Text),
        ])
        .unwrap();
        let rows: Vec<Row> = (0..4)
            .map(|i| Row::new(vec![Value::Int(i % 2), Value::str(format!("payload-{i}"))]))
            .collect();
        let mut table = JoinBuildTable::new(&s, 0);
        let mut dense = ColumnBatch::from_rows(&s, &rows).unwrap();
        let moved = dense.extract_range(0, 4); // dense batch, no selection
        table.insert_batch(moved).unwrap();
        let hits = table.matches(&Value::Int(0)).unwrap().to_vec();
        let names: Vec<String> = hits
            .iter()
            .map(|&r| table.payload_row(r).values()[1].as_str().unwrap().to_owned())
            .collect();
        assert_eq!(names, vec!["payload-0", "payload-2"]);
        // Selected ingest: only live rows land, strings still correct.
        let mut selected = ColumnBatch::from_rows(&s, &rows).unwrap();
        selected.set_selection(vec![3, 1]);
        let mut table2 = JoinBuildTable::new(&s, 0);
        table2.insert_batch(selected).unwrap();
        assert_eq!(table2.len(), 2);
        let hits = table2.matches(&Value::Int(1)).unwrap().to_vec();
        let names: Vec<String> = hits
            .iter()
            .map(|&r| table2.payload_row(r).values()[1].as_str().unwrap().to_owned())
            .collect();
        assert_eq!(names, vec!["payload-3", "payload-1"], "selection order preserved");
    }

    #[test]
    fn hash_join_gathers_text_columns_through_the_probe() {
        let s_left = Schema::new(vec![
            Column::new("k", DataType::Int64),
            Column::new("ltxt", DataType::Text),
        ])
        .unwrap();
        let s_right = Schema::new(vec![
            Column::new("k2", DataType::Int64),
            Column::new("rtxt", DataType::Text),
        ])
        .unwrap();
        let left_rows: Vec<Row> = (0..6)
            .map(|i| Row::new(vec![Value::Int(i % 3), Value::str(format!("L{i}"))]))
            .collect();
        let right_rows: Vec<Row> =
            (0..4).map(|i| Row::new(vec![Value::Int(i), Value::str(format!("R{i}"))])).collect();
        let mut j = HashJoin::new(
            Box::new(ValuesOp::new(s_left, left_rows)),
            Box::new(ValuesOp::new(s_right, right_rows)),
            0,
            0,
            JoinType::Inner,
            storage(),
        );
        let rows = collect_rows(&mut j).unwrap();
        assert_eq!(rows.len(), 6);
        for r in &rows {
            let k = r.int(0).unwrap();
            assert_eq!(r.values()[3].as_str().unwrap(), format!("R{k}"));
            assert!(r.values()[1].as_str().unwrap().starts_with('L'));
        }
    }

    #[test]
    fn partitioned_partials_merge_to_the_serial_table() {
        // Two "workers" folding interleaved morsels must merge into match
        // lists identical to a serial single-builder ingest.
        let s = schema(&["k", "v"]);
        let rows: Vec<Row> =
            (0..40).map(|i| Row::new(vec![Value::Int(i % 7), Value::Int(i)])).collect();
        for partitions in [1usize, 2, 5, BUILD_PARTITIONS] {
            let mut serial = JoinBuildTable::with_partitions(&s, 0, partitions);
            for chunk in rows.chunks(10) {
                serial.insert_batch(ColumnBatch::from_rows(&s, chunk).unwrap()).unwrap();
            }
            // Workers claim alternating morsels (the dynamic claiming the
            // threaded build performs).
            let mut w0 = JoinBuildPartial::new(&s, 0, partitions);
            let mut w1 = JoinBuildPartial::new(&s, 0, partitions);
            for (seq, chunk) in rows.chunks(10).enumerate() {
                let batch = ColumnBatch::from_rows(&s, chunk).unwrap();
                let w = if seq % 2 == 0 { &mut w1 } else { &mut w0 };
                w.fold(seq as u64, batch).unwrap();
            }
            let (p0, parts0) = w0.into_parts();
            let (p1, parts1) = w1.into_parts();
            let merged_parts: Vec<_> = parts0
                .into_iter()
                .zip(parts1)
                .map(|(a, b)| JoinBuildTable::merge_partition(vec![a, b]))
                .collect();
            let merged = JoinBuildTable::from_merged(&s, 0, vec![p0, p1], merged_parts);
            assert_eq!(merged.len(), serial.len());
            for k in 0..7i64 {
                let key = Value::Int(k);
                let a: Vec<Row> =
                    serial.matches(&key).unwrap().iter().map(|&r| serial.payload_row(r)).collect();
                let b: Vec<Row> =
                    merged.matches(&key).unwrap().iter().map(|&r| merged.payload_row(r)).collect();
                assert_eq!(a, b, "key {k} at {partitions} partitions");
            }
        }
    }

    #[test]
    fn hash_and_merge_agree() {
        let data_l: Vec<(i64, i64)> = (0..200).map(|i| (i % 37, i)).collect();
        let data_r: Vec<(i64, i64)> = (0..150).map(|i| (i % 23, i)).collect();
        let mut sorted_l = data_l.clone();
        sorted_l.sort();
        let mut sorted_r = data_r.clone();
        sorted_r.sort();
        let mut hj = HashJoin::new(
            values("k", "a", data_l),
            values("k2", "b", data_r),
            0,
            0,
            JoinType::Inner,
            storage(),
        );
        let mut hj_rows = pairs(&collect_rows(&mut hj).unwrap());
        hj_rows.sort();
        let mut mj = MergeJoin::new(
            values("k", "a", sorted_l),
            values("k2", "b", sorted_r),
            0,
            0,
            storage(),
        );
        let mut mj_rows = pairs(&collect_rows(&mut mj).unwrap());
        mj_rows.sort();
        assert_eq!(hj_rows, mj_rows);
        assert!(!hj_rows.is_empty());
    }

    type Pairs = Vec<(i64, i64)>;

    /// Build/probe inputs big enough that a small budget must spill.
    fn spill_inputs() -> (Pairs, Pairs) {
        let left: Pairs = (0..600).map(|i| (i, i % 53)).collect();
        let right: Pairs = (0..400).map(|i| (i % 53, i)).collect();
        (left, right)
    }

    /// Drain a join *without* closing it, so the spill state stays
    /// inspectable (probe exhaustion already finalizes the charges).
    fn drain(j: &mut HashJoin) -> Vec<Row> {
        j.open().unwrap();
        let mut rows = Vec::new();
        while let Some(batch) = j.next_columns(crate::operator::batch_size()).unwrap() {
            rows.extend(batch.into_rows());
        }
        rows
    }

    fn run_budgeted(budget: usize) -> (Vec<Vec<i64>>, u64, u64, usize) {
        let (left, right) = spill_inputs();
        let st = storage();
        let mut j = HashJoin::new(
            values("a", "k", left),
            values("k2", "b", right),
            1,
            0,
            JoinType::Inner,
            st.clone(),
        )
        .with_mem_budget(budget);
        let rows = pairs(&drain(&mut j));
        let snap = st.clock().snapshot();
        let spilled = j.table.spilled_partition_count();
        j.close().unwrap();
        (rows, snap.cpu_ns, snap.io_ns, spilled)
    }

    #[test]
    fn budgeted_join_rows_identical_clock_larger() {
        let (rows_free, cpu_free, io_free, spilled_free) = run_budgeted(0);
        assert_eq!(spilled_free, 0, "unlimited budget must not spill");
        let (rows_tight, cpu_tight, io_tight, spilled_tight) = run_budgeted(2048);
        assert!(spilled_tight > 0, "2 KiB budget must spill partitions");
        assert_eq!(rows_tight, rows_free, "spilling must not change the rows");
        assert_eq!(cpu_tight, cpu_free, "modeled spill charges only the I/O lane");
        assert!(io_tight > io_free, "spilled run must charge overflow-file I/O");
    }

    #[test]
    fn huge_budget_is_byte_identical_to_unbudgeted() {
        let (rows_free, cpu_free, io_free, _) = run_budgeted(0);
        let (rows_big, cpu_big, io_big, spilled) = run_budgeted(1 << 30);
        assert_eq!(spilled, 0);
        assert_eq!(rows_big, rows_free);
        assert_eq!((cpu_big, io_big), (cpu_free, io_free));
    }

    #[test]
    fn overflow_files_round_trip_the_spilled_partitions() {
        let (_, right) = spill_inputs();
        let st = storage();
        let mut j = HashJoin::new(
            values("a", "k", vec![(0, 0)]),
            values("k2", "b", right.clone()),
            1,
            0,
            JoinType::Inner,
            st.clone(),
        )
        .with_mem_budget(1024);
        let _ = drain(&mut j);
        let table = &j.table;
        assert!(table.spilled_partition_count() > 0);
        assert_eq!(table.spilled_build_bytes(), {
            let mut total = 0u64;
            for (_, file) in table.spill_files() {
                total += file.bytes_len();
            }
            total
        });
        let mut decoded_rows = 0u64;
        for (_, file) in table.spill_files() {
            let mut at = 0;
            while at < file.data().len() {
                let (row, used) = smooth_types::spill::decode_row(&file.data()[at..], 2).unwrap();
                // Every spilled row is a real build-side row.
                let pair = (row.int(0).unwrap(), row.int(1).unwrap());
                assert!(right.contains(&pair), "decoded {pair:?} not in build input");
                decoded_rows += 1;
                at += used;
            }
            assert_eq!(decoded_rows, file.rows(), "file row count matches its contents");
            decoded_rows = 0;
        }
        assert_eq!(
            table.spill_files().map(|(_, f)| f.rows()).sum::<u64>(),
            table.spilled_build_rows(),
        );
    }

    #[test]
    fn finish_probe_charges_once() {
        let (left, right) = spill_inputs();
        let st = storage();
        let mut j = HashJoin::new(
            values("a", "k", left),
            values("k2", "b", right),
            1,
            0,
            JoinType::Inner,
            st.clone(),
        )
        .with_mem_budget(2048);
        let _ = drain(&mut j);
        let after_drain = st.clock().snapshot();
        j.close().unwrap();
        assert_eq!(st.clock().snapshot(), after_drain, "close must not re-charge finalize");
    }
}
