//! Join operators: Hash, Merge, Nested-Loop and Index-Nested-Loop.
//!
//! The TPC-H-style experiments exercise all four: the paper's Fig. 4
//! queries use nested-loop joins with primary-key index lookups (Q4, Q14),
//! hash joins (Q7) and merge joins fed by interesting orders — the
//! situation where Smooth Scan's order preservation matters (Section IV-B,
//! "Interaction with Other Operators").

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use smooth_index::BTreeIndex;
use smooth_storage::{HeapFile, Storage};
use smooth_types::{ColumnBatch, Error, Result, Row, RowBatch, Schema, Value};

use crate::expr::Predicate;
use crate::operator::{batch_size, BoxedOperator, Operator};

/// Supported join semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Emit concatenated pairs for every match.
    Inner,
    /// Emit each left row once if at least one match exists (EXISTS).
    LeftSemi,
}

fn join_schema(left: &Schema, right: &Schema, ty: JoinType) -> Schema {
    match ty {
        JoinType::Inner => left.join(right),
        JoinType::LeftSemi => left.clone(),
    }
}

/// Hash join: blocking build over the right input, streaming probe from the
/// left input. Equi-join on one column per side.
pub struct HashJoin {
    left: BoxedOperator,
    right: BoxedOperator,
    left_col: usize,
    right_col: usize,
    ty: JoinType,
    storage: Storage,
    schema: Schema,
    table: HashMap<Value, Vec<Row>>,
    pending: Vec<Row>,
    /// Probe-side rows pulled in batches, consumed front-to-back.
    left_buf: VecDeque<Row>,
    /// Probe-side columnar morsel plus a live-row cursor: keys are read
    /// vector-at-a-time off the key column and a left row materializes
    /// only when its key hits the build table.
    left_cols: Option<(ColumnBatch, usize)>,
}

impl HashJoin {
    /// `left.left_col = right.right_col`; the right side is materialized
    /// into the hash table.
    pub fn new(
        left: BoxedOperator,
        right: BoxedOperator,
        left_col: usize,
        right_col: usize,
        ty: JoinType,
        storage: Storage,
    ) -> Self {
        let schema = join_schema(left.schema(), right.schema(), ty);
        HashJoin {
            left,
            right,
            left_col,
            right_col,
            ty,
            storage,
            schema,
            table: HashMap::new(),
            pending: Vec::new(),
            left_buf: VecDeque::new(),
            left_cols: None,
        }
    }

    /// One buffered probe row, if any: the row buffer first, then the
    /// columnar buffer. Every protocol consumes these before pulling from
    /// the child, so interleaved protocols keep a single probe order.
    fn buffered_left(&mut self) -> Option<Row> {
        if let Some(row) = self.left_buf.pop_front() {
            return Some(row);
        }
        if let Some((batch, pos)) = self.left_cols.as_mut() {
            let row = batch.row(*pos);
            *pos += 1;
            if *pos >= batch.len() {
                self.left_cols = None;
            }
            return Some(row);
        }
        None
    }

    /// Next probe row: buffered rows first, then the child row protocol.
    fn next_left(&mut self) -> Result<Option<Row>> {
        if let Some(row) = self.buffered_left() {
            return Ok(Some(row));
        }
        self.left.next()
    }

    /// Probe one left row against the build table. Inner matches queue in
    /// `pending` (reversed, so `pop()` preserves build order); a semi match
    /// returns the left row directly.
    fn probe(&mut self, left_row: Row) -> Result<Option<Row>> {
        self.storage.clock().charge_cpu(self.storage.cpu().hash_op_ns);
        let key = left_row.get(self.left_col);
        if key.is_null() {
            return Ok(None);
        }
        if let Some(matches) = self.table.get(key) {
            match self.ty {
                JoinType::Inner => {
                    self.storage
                        .clock()
                        .charge_cpu(self.storage.cpu().emit_tuple_ns * matches.len() as u64);
                    for m in matches.iter().rev() {
                        self.pending.push(left_row.concat(m));
                    }
                }
                JoinType::LeftSemi => {
                    self.storage.clock().charge_cpu(self.storage.cpu().emit_tuple_ns);
                    return Ok(Some(left_row));
                }
            }
        }
        Ok(None)
    }
}

impl Operator for HashJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.left.open()?;
        self.right.open()?;
        self.table.clear();
        self.pending.clear();
        self.left_buf.clear();
        self.left_cols = None;
        let cpu_hash = self.storage.cpu().hash_op_ns;
        // Blocking build, drained batch-at-a-time with bulk clock charges.
        while let Some(batch) = self.right.next_batch(batch_size())? {
            self.storage.clock().charge_cpu(cpu_hash * batch.len() as u64);
            for row in batch.into_rows() {
                let key = row.get(self.right_col).clone();
                if !key.is_null() {
                    self.table.entry(key).or_default().push(row);
                }
            }
        }
        self.right.close()?;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>> {
        loop {
            if let Some(row) = self.pending.pop() {
                return Ok(Some(row));
            }
            let Some(left_row) = self.next_left()? else { return Ok(None) };
            if let Some(row) = self.probe(left_row)? {
                return Ok(Some(row));
            }
        }
    }

    /// Vectorized probe: pull left rows in batches, emit up to `max`
    /// concatenated matches per call.
    fn next_batch(&mut self, max: usize) -> Result<Option<RowBatch>> {
        let max = max.max(1);
        let mut out = Vec::new();
        loop {
            while out.len() < max {
                match self.pending.pop() {
                    Some(row) => out.push(row),
                    None => break,
                }
            }
            if out.len() >= max {
                break;
            }
            match self.buffered_left() {
                Some(left_row) => {
                    if let Some(row) = self.probe(left_row)? {
                        out.push(row);
                    }
                }
                None => match self.left.next_batch(max)? {
                    Some(batch) => self.left_buf.extend(batch.into_rows()),
                    None => break,
                },
            }
        }
        Ok((!out.is_empty()).then(|| RowBatch::from_rows(out)))
    }

    /// Columnar probe: keys are read vector-at-a-time off the left key
    /// column; a left row is materialized only when its key matches, so
    /// misses cost one hash probe and nothing else.
    ///
    /// The parallel driver's probe stage
    /// (`crate::parallel::probe_morsel`) mirrors this loop's per-row
    /// charges and emission order exactly; any change to the charge
    /// model or null/semi semantics here must land there too (the
    /// `prop_parallel` suite pins the two equal).
    fn next_columns(&mut self, max: usize) -> Result<Option<ColumnBatch>> {
        let max = max.max(1);
        let mut out = ColumnBatch::for_schema(&self.schema);
        let cpu = *self.storage.cpu();
        'fill: loop {
            while out.physical_rows() < max {
                match self.pending.pop() {
                    Some(row) => out.push_owned_row(row)?,
                    None => break,
                }
            }
            if out.physical_rows() >= max {
                break;
            }
            // Row-protocol leftovers drain first so interleaved protocols
            // keep one probe order.
            if let Some(left_row) = self.left_buf.pop_front() {
                if let Some(row) = self.probe(left_row)? {
                    out.push_owned_row(row)?;
                }
                continue;
            }
            if self.left_cols.is_none() {
                match self.left.next_columns(max)? {
                    Some(batch) => self.left_cols = Some((batch, 0)),
                    None => break 'fill,
                }
            }
            let Some((batch, pos)) = self.left_cols.as_mut() else { break };
            batch.column_checked(self.left_col)?;
            while *pos < batch.len() && out.physical_rows() < max && self.pending.is_empty() {
                let live = *pos;
                *pos += 1;
                let phys = match batch.selection() {
                    Some(sel) => sel[live] as usize,
                    None => live,
                };
                self.storage.clock().charge_cpu(cpu.hash_op_ns);
                let col = batch.column(self.left_col);
                if col.is_null(phys) {
                    continue;
                }
                let key = col.value(phys);
                let Some(matches) = self.table.get(&key) else { continue };
                match self.ty {
                    JoinType::Inner => {
                        self.storage.clock().charge_cpu(cpu.emit_tuple_ns * matches.len() as u64);
                        let left_row = batch.row(live);
                        for m in matches.iter().rev() {
                            self.pending.push(left_row.concat(m));
                        }
                    }
                    JoinType::LeftSemi => {
                        self.storage.clock().charge_cpu(cpu.emit_tuple_ns);
                        out.push_owned_row(batch.row(live))?;
                    }
                }
            }
            if *pos >= batch.len() {
                self.left_cols = None;
            }
        }
        Ok((!out.is_empty()).then_some(out))
    }

    fn close(&mut self) -> Result<()> {
        self.table.clear();
        self.pending.clear();
        self.left_buf.clear();
        self.left_cols = None;
        self.left.close()
    }

    fn label(&self) -> String {
        format!("HashJoin({:?}) [{} ⋈ {}]", self.ty, self.left.label(), self.right.label())
    }
}

/// Merge join over inputs already sorted on their join columns (inner only).
///
/// Keeps the default (row-looping) `next_batch`: the merge frontier
/// advances one key group at a time, so there is no page- or batch-shaped
/// unit of work to amortize — vectorizing it would only buffer rows it
/// already buffers.
pub struct MergeJoin {
    left: BoxedOperator,
    right: BoxedOperator,
    left_col: usize,
    right_col: usize,
    storage: Storage,
    schema: Schema,
    left_row: Option<Row>,
    right_row: Option<Row>,
    /// The buffered group of right rows sharing the current key.
    right_group: Vec<Row>,
    group_key: Option<Value>,
    group_pos: usize,
    started: bool,
}

impl MergeJoin {
    /// `left.left_col = right.right_col`, both inputs ascending on the key.
    pub fn new(
        left: BoxedOperator,
        right: BoxedOperator,
        left_col: usize,
        right_col: usize,
        storage: Storage,
    ) -> Self {
        let schema = join_schema(left.schema(), right.schema(), JoinType::Inner);
        MergeJoin {
            left,
            right,
            left_col,
            right_col,
            storage,
            schema,
            left_row: None,
            right_row: None,
            right_group: Vec::new(),
            group_key: None,
            group_pos: 0,
            started: false,
        }
    }

    fn fill_right_group(&mut self, key: &Value) -> Result<()> {
        self.right_group.clear();
        self.group_key = Some(key.clone());
        self.group_pos = 0;
        loop {
            match &self.right_row {
                Some(r) if r.get(self.right_col) == key => {
                    self.right_group.push(r.clone());
                    self.right_row = self.right.next()?;
                }
                _ => break,
            }
        }
        Ok(())
    }
}

impl Operator for MergeJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.left.open()?;
        self.right.open()?;
        self.left_row = None;
        self.right_row = None;
        self.right_group.clear();
        self.group_key = None;
        self.group_pos = 0;
        self.started = false;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>> {
        if !self.started {
            self.left_row = self.left.next()?;
            self.right_row = self.right.next()?;
            self.started = true;
        }
        loop {
            let Some(left_row) = self.left_row.clone() else { return Ok(None) };
            let lkey = left_row.get(self.left_col).clone();
            // Emit from the buffered group if it matches the current key.
            if self.group_key.as_ref() == Some(&lkey) {
                if self.group_pos < self.right_group.len() {
                    let out = left_row.concat(&self.right_group[self.group_pos]);
                    self.group_pos += 1;
                    self.storage.clock().charge_cpu(self.storage.cpu().emit_tuple_ns);
                    return Ok(Some(out));
                }
                // group exhausted for this left row: advance left, replay group
                self.left_row = self.left.next()?;
                self.group_pos = 0;
                continue;
            }
            self.storage.clock().charge_cpu(self.storage.cpu().sort_cmp_ns);
            // Advance right until its key >= left key, then build the group.
            loop {
                match &self.right_row {
                    Some(r) if r.get(self.right_col).total_cmp(&lkey).is_lt() => {
                        self.storage.clock().charge_cpu(self.storage.cpu().sort_cmp_ns);
                        self.right_row = self.right.next()?;
                    }
                    _ => break,
                }
            }
            match &self.right_row {
                Some(r) if *r.get(self.right_col) == lkey => {
                    self.fill_right_group(&lkey.clone())?;
                }
                _ => {
                    // No right match: skip this left row. Reset the group so
                    // stale buffers never replay for a later key.
                    self.group_key = None;
                    self.right_group.clear();
                    self.left_row = self.left.next()?;
                }
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        self.right_group.clear();
        self.left.close()?;
        self.right.close()
    }

    fn label(&self) -> String {
        format!("MergeJoin [{} ⋈ {}]", self.left.label(), self.right.label())
    }
}

/// Naive nested-loop join with an arbitrary pair predicate (theta join);
/// the right side is materialized once.
pub struct NestedLoopJoin {
    left: BoxedOperator,
    right: BoxedOperator,
    /// Evaluated over the concatenated pair.
    predicate: Predicate,
    ty: JoinType,
    storage: Storage,
    schema: Schema,
    right_rows: Vec<Row>,
    left_row: Option<Row>,
    right_pos: usize,
}

impl NestedLoopJoin {
    /// Join where `predicate` is evaluated over `left ++ right` rows.
    pub fn new(
        left: BoxedOperator,
        right: BoxedOperator,
        predicate: Predicate,
        ty: JoinType,
        storage: Storage,
    ) -> Self {
        let schema = join_schema(left.schema(), right.schema(), ty);
        NestedLoopJoin {
            left,
            right,
            predicate,
            ty,
            storage,
            schema,
            right_rows: Vec::new(),
            left_row: None,
            right_pos: 0,
        }
    }
}

impl Operator for NestedLoopJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.left.open()?;
        self.right.open()?;
        self.right_rows.clear();
        while let Some(batch) = self.right.next_batch(batch_size())? {
            self.right_rows.extend(batch.into_rows());
        }
        self.right.close()?;
        self.left_row = None;
        self.right_pos = 0;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>> {
        loop {
            if self.left_row.is_none() {
                self.left_row = self.left.next()?;
                self.right_pos = 0;
                if self.left_row.is_none() {
                    return Ok(None);
                }
            }
            let left_row = self.left_row.as_ref().unwrap().clone();
            while self.right_pos < self.right_rows.len() {
                let pair = left_row.concat(&self.right_rows[self.right_pos]);
                self.right_pos += 1;
                self.storage.clock().charge_cpu(self.storage.cpu().inspect_tuple_ns);
                if self.predicate.eval(&pair)? {
                    self.storage.clock().charge_cpu(self.storage.cpu().emit_tuple_ns);
                    match self.ty {
                        JoinType::Inner => return Ok(Some(pair)),
                        JoinType::LeftSemi => {
                            self.left_row = None;
                            return Ok(Some(left_row));
                        }
                    }
                }
            }
            self.left_row = None;
        }
    }

    fn close(&mut self) -> Result<()> {
        self.right_rows.clear();
        self.left.close()
    }

    fn label(&self) -> String {
        format!("NestedLoopJoin({:?}) [{} ⋈ {}]", self.ty, self.left.label(), self.right.label())
    }
}

/// Index nested-loop join: for each outer row, probe the inner table's
/// B+-tree and fetch matching heap tuples ("a parameterized path",
/// Section IV-B). The inner fetches are random heap I/O — the pattern that
/// destroys Q12/Q19 in Fig. 1 when the outer cardinality is underestimated.
pub struct IndexNestedLoopJoin {
    outer: BoxedOperator,
    outer_col: usize,
    inner_heap: Arc<HeapFile>,
    inner_index: Arc<BTreeIndex>,
    inner_residual: Predicate,
    ty: JoinType,
    storage: Storage,
    schema: Schema,
    pending: Vec<Row>,
    /// Outer rows pulled in batches, consumed front-to-back.
    outer_buf: VecDeque<Row>,
}

impl IndexNestedLoopJoin {
    /// `outer.outer_col = inner.indexed_col` via `inner_index`.
    pub fn new(
        outer: BoxedOperator,
        outer_col: usize,
        inner_heap: Arc<HeapFile>,
        inner_index: Arc<BTreeIndex>,
        inner_residual: Predicate,
        ty: JoinType,
        storage: Storage,
    ) -> Self {
        let schema = join_schema(outer.schema(), inner_heap.schema(), ty);
        IndexNestedLoopJoin {
            outer,
            outer_col,
            inner_heap,
            inner_index,
            inner_residual,
            ty,
            storage,
            schema,
            pending: Vec::new(),
            outer_buf: VecDeque::new(),
        }
    }

    /// Next outer row: buffered batch first, then the child row protocol.
    fn next_outer(&mut self) -> Result<Option<Row>> {
        if let Some(row) = self.outer_buf.pop_front() {
            return Ok(Some(row));
        }
        self.outer.next()
    }

    /// Probe the inner index for one outer row. Inner matches queue in
    /// `pending` (reversed, so `pop()` preserves TID order); a semi match
    /// returns the outer row directly.
    fn probe(&mut self, outer_row: Row) -> Result<Option<Row>> {
        let key = match outer_row.get(self.outer_col) {
            Value::Int(k) => *k,
            Value::Null => return Ok(None),
            other => return Err(Error::exec(format!("INLJ key must be integer, got {other}"))),
        };
        let tids = self.inner_index.probe(&self.storage, key);
        let cpu = *self.storage.cpu();
        let mut matched = false;
        let mut matches: Vec<Row> = Vec::new();
        for tid in tids {
            let page = self.storage.read_heap_page(&self.inner_heap, tid.page)?;
            self.storage.clock().charge_cpu(cpu.inspect_tuple_ns);
            let inner_row = self.inner_heap.decode_slot(&page, tid.slot)?;
            if self.inner_residual.eval(&inner_row)? {
                matched = true;
                if self.ty == JoinType::LeftSemi {
                    break;
                }
                self.storage.clock().charge_cpu(cpu.emit_tuple_ns);
                matches.push(outer_row.concat(&inner_row));
            }
        }
        match self.ty {
            JoinType::Inner => {
                debug_assert!(self.pending.is_empty(), "probe with undrained pending rows");
                matches.reverse();
                self.pending = matches;
                Ok(None)
            }
            JoinType::LeftSemi => {
                if matched {
                    self.storage.clock().charge_cpu(cpu.emit_tuple_ns);
                    Ok(Some(outer_row))
                } else {
                    Ok(None)
                }
            }
        }
    }
}

impl Operator for IndexNestedLoopJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.outer.open()?;
        self.pending.clear();
        self.outer_buf.clear();
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>> {
        loop {
            if let Some(row) = self.pending.pop() {
                return Ok(Some(row));
            }
            let Some(outer_row) = self.next_outer()? else { return Ok(None) };
            if let Some(row) = self.probe(outer_row)? {
                return Ok(Some(row));
            }
        }
    }

    /// Vectorized probe loop: outer rows arrive in batches, join output
    /// leaves in batches of up to `max`.
    fn next_batch(&mut self, max: usize) -> Result<Option<RowBatch>> {
        let max = max.max(1);
        let mut out = Vec::new();
        loop {
            while out.len() < max {
                match self.pending.pop() {
                    Some(row) => out.push(row),
                    None => break,
                }
            }
            if out.len() >= max {
                break;
            }
            if self.outer_buf.is_empty() {
                match self.outer.next_batch(max)? {
                    Some(batch) => self.outer_buf.extend(batch.into_rows()),
                    None => break,
                }
            }
            let Some(outer_row) = self.outer_buf.pop_front() else { break };
            if let Some(row) = self.probe(outer_row)? {
                out.push(row);
            }
        }
        Ok((!out.is_empty()).then(|| RowBatch::from_rows(out)))
    }

    fn close(&mut self) -> Result<()> {
        self.pending.clear();
        self.outer_buf.clear();
        self.outer.close()
    }

    fn label(&self) -> String {
        format!(
            "IndexNestedLoopJoin({:?}) [{} ⋈ {} via {}]",
            self.ty,
            self.outer.label(),
            self.inner_heap.name(),
            self.inner_index.name()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{collect_rows, ValuesOp};
    use smooth_storage::HeapLoader;
    use smooth_types::{Column, DataType};

    fn schema(names: &[&str]) -> Schema {
        Schema::new(names.iter().map(|n| Column::new(*n, DataType::Int64)).collect()).unwrap()
    }

    fn values(name_a: &str, name_b: &str, rows: Vec<(i64, i64)>) -> BoxedOperator {
        Box::new(ValuesOp::new(
            schema(&[name_a, name_b]),
            rows.into_iter().map(|(a, b)| Row::new(vec![Value::Int(a), Value::Int(b)])).collect(),
        ))
    }

    fn storage() -> Storage {
        Storage::default_hdd()
    }

    fn pairs(rows: &[Row]) -> Vec<Vec<i64>> {
        rows.iter().map(|r| r.values().iter().map(|v| v.as_int().unwrap()).collect()).collect()
    }

    #[test]
    fn hash_join_inner_matches() {
        let left = values("a", "k", vec![(1, 10), (2, 20), (3, 30), (4, 20)]);
        let right = values("k2", "b", vec![(20, 100), (20, 200), (30, 300)]);
        let mut j = HashJoin::new(left, right, 1, 0, JoinType::Inner, storage());
        let mut rows = pairs(&collect_rows(&mut j).unwrap());
        rows.sort();
        assert_eq!(
            rows,
            vec![
                vec![2, 20, 20, 100],
                vec![2, 20, 20, 200],
                vec![3, 30, 30, 300],
                vec![4, 20, 20, 100],
                vec![4, 20, 20, 200],
            ]
        );
    }

    #[test]
    fn hash_join_semi_emits_left_once() {
        let left = values("a", "k", vec![(1, 10), (2, 20), (3, 30)]);
        let right = values("k2", "b", vec![(20, 1), (20, 2), (20, 3)]);
        let mut j = HashJoin::new(left, right, 1, 0, JoinType::LeftSemi, storage());
        let rows = collect_rows(&mut j).unwrap();
        assert_eq!(pairs(&rows), vec![vec![2, 20]]);
        assert_eq!(j.schema().len(), 2);
    }

    #[test]
    fn merge_join_handles_duplicate_groups() {
        let left = values("k", "a", vec![(1, 0), (2, 1), (2, 2), (5, 3)]);
        let right = values("k2", "b", vec![(0, 9), (2, 10), (2, 11), (4, 12), (5, 13)]);
        let mut j = MergeJoin::new(left, right, 0, 0, storage());
        let rows = pairs(&collect_rows(&mut j).unwrap());
        assert_eq!(
            rows,
            vec![
                vec![2, 1, 2, 10],
                vec![2, 1, 2, 11],
                vec![2, 2, 2, 10],
                vec![2, 2, 2, 11],
                vec![5, 3, 5, 13],
            ]
        );
    }

    #[test]
    fn merge_join_empty_sides() {
        let mut j = MergeJoin::new(
            values("k", "a", vec![]),
            values("k2", "b", vec![(1, 1)]),
            0,
            0,
            storage(),
        );
        assert!(collect_rows(&mut j).unwrap().is_empty());
        let mut j = MergeJoin::new(
            values("k", "a", vec![(1, 1)]),
            values("k2", "b", vec![]),
            0,
            0,
            storage(),
        );
        assert!(collect_rows(&mut j).unwrap().is_empty());
    }

    #[test]
    fn nested_loop_theta_join() {
        // join on left.a < right.b, expressed over the concatenated row —
        // realized here as NOT(b <= a) via per-pair evaluation; we use a
        // range check helper instead: pair passes when col0 < col3.
        let left = values("a", "x", vec![(1, 0), (5, 0)]);
        let right = values("y", "b", vec![(0, 3), (0, 10)]);
        // Predicate: col3 (b) > col0 (a) can't be expressed directly by the
        // IntRange variants over two columns, so emulate with Or/And of
        // fixed ranges per this small domain — instead test equi via NLJ.
        let mut j = NestedLoopJoin::new(left, right, Predicate::True, JoinType::Inner, storage());
        let rows = collect_rows(&mut j).unwrap();
        assert_eq!(rows.len(), 4); // cross product under True
        assert_eq!(j.schema().len(), 4);
    }

    #[test]
    fn inlj_fetches_inner_rows_through_the_index() {
        // Inner table: 500 rows, key = i (unique) plus payload.
        let inner_schema = schema(&["pk", "payload"]);
        let mut l = HeapLoader::new_mem("inner", inner_schema);
        for i in 0..500i64 {
            l.push(&Row::new(vec![Value::Int(i), Value::Int(i * 2)])).unwrap();
        }
        let heap = Arc::new(l.finish().unwrap());
        let index = Arc::new(BTreeIndex::build_from_heap("pk_idx", &heap, 0).unwrap());
        let outer = values("a", "fk", vec![(0, 3), (1, 499), (2, 1000)]);
        let mut j = IndexNestedLoopJoin::new(
            outer,
            1,
            heap,
            index,
            Predicate::True,
            JoinType::Inner,
            storage(),
        );
        let rows = pairs(&collect_rows(&mut j).unwrap());
        assert_eq!(rows, vec![vec![0, 3, 3, 6], vec![1, 499, 499, 998]]);
    }

    #[test]
    fn inlj_semi_join() {
        let inner_schema = schema(&["pk", "payload"]);
        let mut l = HeapLoader::new_mem("inner", inner_schema);
        for i in 0..100i64 {
            l.push(&Row::new(vec![Value::Int(i), Value::Int(0)])).unwrap();
        }
        let heap = Arc::new(l.finish().unwrap());
        let index = Arc::new(BTreeIndex::build_from_heap("pk_idx", &heap, 0).unwrap());
        let outer = values("a", "fk", vec![(7, 50), (8, 200)]);
        let mut j = IndexNestedLoopJoin::new(
            outer,
            1,
            heap,
            index,
            Predicate::True,
            JoinType::LeftSemi,
            storage(),
        );
        let rows = pairs(&collect_rows(&mut j).unwrap());
        assert_eq!(rows, vec![vec![7, 50]]);
    }

    #[test]
    fn hash_and_merge_agree() {
        let data_l: Vec<(i64, i64)> = (0..200).map(|i| (i % 37, i)).collect();
        let data_r: Vec<(i64, i64)> = (0..150).map(|i| (i % 23, i)).collect();
        let mut sorted_l = data_l.clone();
        sorted_l.sort();
        let mut sorted_r = data_r.clone();
        sorted_r.sort();
        let mut hj = HashJoin::new(
            values("k", "a", data_l),
            values("k2", "b", data_r),
            0,
            0,
            JoinType::Inner,
            storage(),
        );
        let mut hj_rows = pairs(&collect_rows(&mut hj).unwrap());
        hj_rows.sort();
        let mut mj = MergeJoin::new(
            values("k", "a", sorted_l),
            values("k2", "b", sorted_r),
            0,
            0,
            storage(),
        );
        let mut mj_rows = pairs(&collect_rows(&mut mj).unwrap());
        mj_rows.sort();
        assert_eq!(hj_rows, mj_rows);
        assert!(!hj_rows.is_empty());
    }
}
