//! External merge sort under a memory budget.
//!
//! Backs [`crate::Sort`] when an operator memory budget is set: input
//! rows accumulate until the working set's spill-codec byte size
//! crosses the budget, at which point the accumulated chunk becomes a
//! *run* — stably sorted (charged `sort_cmp_ns · n·⌊log₂ n⌋`, exactly
//! like the in-memory sort), serialized under the spill codec
//! ([`smooth_types::spill`]) and written to a charged overflow file
//! ([`crate::spill`]). When the input ends, every run is re-read (one
//! charged transfer each) and k-way merged: the merge pops the smallest
//! head under the sort keys, breaking ties toward the *earliest* run.
//! Because runs are consecutive input chunks and each is sorted stably,
//! that tie-break reproduces the in-memory stable sort's output
//! byte-for-byte — ordering is independent of the budget. The merge
//! itself charges `sort_cmp_ns · n·⌈log₂ k⌉` for its k-way selection.
//!
//! An input that never crosses the budget never cuts a run: the sorter
//! degenerates to the in-memory sort with identical charges, which is
//! what keeps budgeted-but-fitting plans byte-identical to unbudgeted
//! ones on the virtual clock (the perf-smoke gate's zero-spill assert).

use smooth_storage::Storage;
use smooth_types::{spill as codec, Result, Row};

use crate::sort::{compare_rows, SortKey};
use crate::spill::{charge_spill_io, spill_write, SpillFile};

/// One spilled sorted run: the rows (kept addressable — overflow files
/// are charged accounting, like every spill in this engine) plus their
/// really-serialized overflow file.
struct SortRun {
    rows: Vec<Row>,
    file: SpillFile,
}

/// Budgeted sort accumulator: push rows, then [`ExternalSorter::finish`].
pub struct ExternalSorter {
    storage: Storage,
    keys: Vec<SortKey>,
    /// Budget in bytes (> 0; a zero budget never constructs a sorter).
    budget: u64,
    runs: Vec<SortRun>,
    cur: Vec<Row>,
    cur_bytes: u64,
}

impl ExternalSorter {
    /// A sorter holding at most `budget_bytes` of encoded working set
    /// before cutting spilled runs.
    pub fn new(storage: Storage, keys: Vec<SortKey>, budget_bytes: usize) -> Self {
        ExternalSorter {
            storage,
            keys,
            budget: (budget_bytes as u64).max(1),
            runs: Vec::new(),
            cur: Vec::new(),
            cur_bytes: 0,
        }
    }

    /// Accumulate one input row, cutting a run when the working set
    /// crosses the budget. Fails only if the run's overflow-file write
    /// fails (injected `spill_err` faults that exhaust their retries).
    pub fn push(&mut self, row: Row) -> Result<()> {
        self.cur_bytes += codec::row_len(&row) as u64;
        self.cur.push(row);
        if self.cur_bytes > self.budget {
            self.cut_run()?;
        }
        Ok(())
    }

    /// Sort the accumulated chunk (charged like the in-memory sort),
    /// serialize it and charge the overflow-file write.
    fn cut_run(&mut self) -> Result<()> {
        let rows = std::mem::take(&mut self.cur);
        let bytes = std::mem::take(&mut self.cur_bytes);
        let mut rows = {
            let n = rows.len() as u64;
            if n > 1 {
                self.storage
                    .clock()
                    .charge_cpu(self.storage.cpu().sort_cmp_ns * n * n.ilog2() as u64);
            }
            rows
        };
        let keys = &self.keys;
        rows.sort_by(|a, b| compare_rows(a, b, keys));
        let mut data = Vec::with_capacity(bytes as usize);
        for row in &rows {
            codec::encode_row(row, &mut data);
        }
        debug_assert_eq!(data.len() as u64, bytes);
        let n = rows.len() as u64;
        self.runs.push(SortRun { rows, file: spill_write(&self.storage, data, n)? });
        Ok(())
    }

    /// Number of runs spilled so far.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Finish the sort: the fully-sorted output, byte-identical to the
    /// in-memory sort of the same input.
    pub fn finish(mut self) -> Result<Vec<Row>> {
        if self.runs.is_empty() {
            // Never spilled: exactly the in-memory sort and its charge.
            let n = self.cur.len() as u64;
            if n > 1 {
                self.storage
                    .clock()
                    .charge_cpu(self.storage.cpu().sort_cmp_ns * n * n.ilog2() as u64);
            }
            let keys = std::mem::take(&mut self.keys);
            let mut rows = std::mem::take(&mut self.cur);
            rows.sort_by(|a, b| compare_rows(a, b, &keys));
            return Ok(rows);
        }
        if !self.cur.is_empty() {
            // The final partial chunk merges like any other run.
            self.cut_run()?;
        }
        // Merge pass: re-read every run file, then k-way select.
        let total: usize = self.runs.iter().map(|r| r.rows.len()).sum();
        for run in &self.runs {
            charge_spill_io(&self.storage, run.file.bytes_len());
        }
        let k = self.runs.len() as u64;
        let merge_depth = k.next_power_of_two().trailing_zeros() as u64;
        if total > 0 && merge_depth > 0 {
            self.storage
                .clock()
                .charge_cpu(self.storage.cpu().sort_cmp_ns * total as u64 * merge_depth);
        }
        let keys = &self.keys;
        let mut heads = vec![0usize; self.runs.len()];
        let mut out = Vec::with_capacity(total);
        for _ in 0..total {
            // Smallest head wins; ties go to the earliest run, which —
            // runs being consecutive stable-sorted input chunks —
            // reproduces the stable global order.
            let mut best: Option<usize> = None;
            for (r, run) in self.runs.iter().enumerate() {
                let Some(row) = run.rows.get(heads[r]) else { continue };
                match best {
                    Some(b)
                        if compare_rows(row, &self.runs[b].rows[heads[b]], keys)
                            == std::cmp::Ordering::Less =>
                    {
                        best = Some(r)
                    }
                    None => best = Some(r),
                    _ => {}
                }
            }
            // invariant: `total` sums the runs' row counts, so while
            // the loop runs at least one head is still in bounds.
            let b = best.expect("total counts remaining rows");
            out.push(self.runs[b].rows[heads[b]].clone());
            heads[b] += 1;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smooth_types::Value;

    fn storage() -> Storage {
        Storage::default_hdd()
    }

    fn rows(n: i64) -> Vec<Row> {
        // Deterministic shuffle with duplicate keys to exercise
        // stability: (key, original position).
        (0..n).map(|i| Row::new(vec![Value::Int((i * 37) % 10), Value::Int(i)])).collect()
    }

    fn reference_sort(mut input: Vec<Row>, keys: &[SortKey]) -> Vec<Row> {
        input.sort_by(|a, b| compare_rows(a, b, keys));
        input
    }

    #[test]
    fn spilled_sort_matches_in_memory_stable_order() {
        let keys = vec![SortKey::asc(0)];
        let input = rows(500);
        // ~18 bytes/row encoded; a 256-byte budget forces many runs.
        let mut sorter = ExternalSorter::new(storage(), keys.clone(), 256);
        for row in input.clone() {
            sorter.push(row).unwrap();
        }
        assert!(sorter.run_count() > 1, "budget must force spilled runs");
        assert_eq!(sorter.finish().unwrap(), reference_sort(input, &keys));
    }

    #[test]
    fn unspilled_sorter_charges_exactly_the_in_memory_sort() {
        let st = storage();
        let keys = vec![SortKey::asc(0)];
        let before = st.clock().snapshot();
        let mut sorter = ExternalSorter::new(st.clone(), keys, 1 << 30);
        for row in rows(1024) {
            sorter.push(row).unwrap();
        }
        let out = sorter.finish().unwrap();
        assert_eq!(out.len(), 1024);
        let delta = st.clock().snapshot().since(&before);
        assert_eq!(delta.cpu_ns, st.cpu().sort_cmp_ns * 1024 * 10);
        assert_eq!(delta.io_ns, 0);
    }

    #[test]
    fn spilled_runs_charge_write_and_read_io() {
        let st = storage();
        let keys = vec![SortKey::desc(1)];
        let before = st.clock().snapshot();
        let mut sorter = ExternalSorter::new(st.clone(), keys, 1024);
        for row in rows(400) {
            sorter.push(row).unwrap();
        }
        let runs = {
            let out = sorter.finish().unwrap();
            assert_eq!(out.len(), 400);
            out
        };
        assert_eq!(runs.first().unwrap().int(1).unwrap(), 399);
        assert!(st.clock().snapshot().since(&before).io_ns > 0);
    }

    #[test]
    fn run_files_round_trip_through_the_codec() {
        let keys = vec![SortKey::asc(0)];
        let mut sorter = ExternalSorter::new(storage(), keys, 256);
        for row in rows(100) {
            sorter.push(row).unwrap();
        }
        assert!(sorter.run_count() > 0);
        for run in &sorter.runs {
            let mut decoded = Vec::new();
            let mut at = 0;
            while at < run.file.data().len() {
                let (row, used) = codec::decode_row(&run.file.data()[at..], 2).unwrap();
                decoded.push(row);
                at += used;
            }
            assert_eq!(&decoded, &run.rows);
        }
    }
}
