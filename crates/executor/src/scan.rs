//! The three traditional access paths of Section II.
//!
//! * [`FullTableScan`] — reads every heap page in physical order with
//!   readahead; cost is independent of selectivity (Eq. 10).
//! * [`IndexScan`] — walks the B+-tree range cursor and fetches one heap
//!   page per qualifying TID; preserves key order but pays a random access
//!   (and possibly a repeated page visit) per tuple (Eq. 11).
//! * [`SortScan`] — PostgreSQL's Bitmap Heap Scan: drains the index range,
//!   sorts TIDs in page order, then fetches each qualifying page once in a
//!   nearly sequential pattern. Blocking, and the index's key order is
//!   destroyed (Section II "Sort Scan").

use std::collections::VecDeque;
use std::ops::Bound;
use std::sync::Arc;

use smooth_index::{BTreeIndex, IndexCursor};
use smooth_storage::{HeapFile, PageView, Storage};
use smooth_types::{ColumnBatch, PageId, Result, Row, RowBatch, Schema, Tid};

use crate::expr::{Predicate, ScanFilter};
use crate::operator::Operator;

/// Probe-and-fill one page's listed slots through `filter` straight into
/// the columnar buffer `out`, charging the virtual clock in one bulk
/// increment (identical totals to the per-tuple charges of the
/// row-at-a-time path: one inspect per slot probed, one emit per
/// qualifier).
pub(crate) fn fill_page_columns(
    storage: &Storage,
    filter: &mut ScanFilter,
    schema: &Schema,
    page: &smooth_storage::PageBuf,
    view: &PageView<'_>,
    slots: impl Iterator<Item = u16>,
    out: &mut ColumnBatch,
) -> Result<()> {
    let mut tuples: Vec<&[u8]> = Vec::with_capacity(slots.size_hint().0);
    for slot in slots {
        tuples.push(view.get(slot)?);
    }
    let (inspected, emitted) = filter.fill_columns(schema, &tuples, Some(page), out)?;
    let cpu = storage.cpu();
    storage.clock().charge_cpu(cpu.inspect_tuple_ns * inspected + cpu.emit_tuple_ns * emitted);
    Ok(())
}

/// Pages fetched per full-scan readahead request (256 KB, the order of
/// magnitude OS readahead gives PostgreSQL sequential scans).
pub const FULL_SCAN_READAHEAD: u32 = 32;

/// Maximum gap (in pages) bridged by the Sort Scan prefetcher: ascending
/// page requests closer than this are coalesced into one sequential run,
/// modeling the "nearly sequential pattern, easily detected by disk
/// prefetchers" of Section II.
pub const SORT_SCAN_PREFETCH_GAP: u32 = 16;

/// Sequential scan over the whole heap.
///
/// The scan is columnar-native: every refill probes one readahead run of
/// pages through the [`ScanFilter`] and decodes the qualifiers straight
/// into a [`smooth_types::ColumnBuffer`] (no per-row `Vec<Value>`), from which all
/// three iterator protocols drain in one shared FIFO order.
pub struct FullTableScan {
    heap: Arc<HeapFile>,
    storage: Storage,
    filter: ScanFilter,
    readahead: u32,
    next_page: u32,
    out: smooth_types::ColumnBuffer,
}

impl FullTableScan {
    /// Scan `heap`, emitting rows matching `predicate`.
    pub fn new(heap: Arc<HeapFile>, storage: Storage, predicate: Predicate) -> Self {
        let filter = ScanFilter::new(predicate, heap.schema());
        let out = smooth_types::ColumnBuffer::for_schema(heap.schema());
        FullTableScan { heap, storage, filter, readahead: FULL_SCAN_READAHEAD, next_page: 0, out }
    }

    /// Override the readahead window (ablation benches).
    pub fn with_readahead(mut self, pages: u32) -> Self {
        self.readahead = pages.max(1);
        self
    }

    /// Refill the output buffer from the next readahead run(s). Returns
    /// `false` at heap exhaustion. CPU is charged per page in bulk, with
    /// totals identical to per-tuple accounting.
    fn refill(&mut self) -> Result<bool> {
        debug_assert!(self.out.is_drained());
        loop {
            let total = self.heap.page_count();
            if self.next_page >= total {
                return Ok(false);
            }
            let len = self.readahead.min(total - self.next_page);
            let pages = self.storage.read_heap_run(&self.heap, PageId(self.next_page), len)?;
            self.storage.charge_page_probes(len as u64);
            self.next_page += len;
            for (_, page) in &pages {
                let view = PageView::new(page)?;
                fill_page_columns(
                    &self.storage,
                    &mut self.filter,
                    self.heap.schema(),
                    page,
                    &view,
                    0..view.slot_count(),
                    self.out.fill(),
                )?;
            }
            if !self.out.is_drained() {
                return Ok(true);
            }
        }
    }
}

impl Operator for FullTableScan {
    fn schema(&self) -> &Schema {
        self.heap.schema()
    }

    fn open(&mut self) -> Result<()> {
        self.next_page = 0;
        self.out.reset();
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>> {
        loop {
            if let Some(row) = self.out.pop_row() {
                return Ok(Some(row));
            }
            if !self.refill()? {
                return Ok(None);
            }
        }
    }

    fn next_batch(&mut self, max: usize) -> Result<Option<RowBatch>> {
        let max = max.max(1);
        loop {
            if !self.out.is_drained() {
                return Ok(Some(RowBatch::from_rows(self.out.pop_rows(max))));
            }
            if !self.refill()? {
                return Ok(None);
            }
        }
    }

    /// Columnar scan: one readahead run per refill, qualifiers decoded
    /// directly into column vectors, morsels leave without row
    /// materialization.
    fn next_columns(&mut self, max: usize) -> Result<Option<ColumnBatch>> {
        let max = max.max(1);
        loop {
            if let Some(batch) = self.out.pop_columns(max) {
                return Ok(Some(batch));
            }
            if !self.refill()? {
                return Ok(None);
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        self.out.reset();
        Ok(())
    }

    fn label(&self) -> String {
        format!("FullTableScan({})", self.heap.name())
    }
}

/// Index scan: key-ordered, one heap fetch per qualifying entry.
pub struct IndexScan {
    heap: Arc<HeapFile>,
    index: Arc<BTreeIndex>,
    storage: Storage,
    lo: Bound<i64>,
    hi: Bound<i64>,
    filter: ScanFilter,
    cursor: Option<IndexCursor>,
}

impl IndexScan {
    /// Scan `index` over `[lo, hi]`; `residual` filters fetched rows
    /// (predicates on other columns).
    pub fn new(
        heap: Arc<HeapFile>,
        index: Arc<BTreeIndex>,
        storage: Storage,
        lo: Bound<i64>,
        hi: Bound<i64>,
        residual: Predicate,
    ) -> Self {
        let filter = ScanFilter::new(residual, heap.schema());
        IndexScan { heap, index, storage, lo, hi, filter, cursor: None }
    }
}

impl Operator for IndexScan {
    fn schema(&self) -> &Schema {
        self.heap.schema()
    }

    fn open(&mut self) -> Result<()> {
        self.cursor = Some(self.index.range(&self.storage, self.lo, self.hi));
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>> {
        let cursor = self
            .cursor
            .as_mut()
            .ok_or_else(|| smooth_types::Error::exec("IndexScan::next before open"))?;
        while let Some((_, tid)) = cursor.next() {
            let page = self.storage.read_heap_page(&self.heap, tid.page)?;
            let cpu = self.storage.cpu();
            self.storage.clock().charge_cpu(cpu.inspect_tuple_ns);
            let row = self.heap.decode_slot(&page, tid.slot)?;
            if self.filter.predicate().eval(&row)? {
                self.storage.clock().charge_cpu(cpu.emit_tuple_ns);
                return Ok(Some(row));
            }
        }
        Ok(None)
    }

    /// Batched index scan: one virtual call drives up to `max` cursor
    /// probes. The heap fetch per qualifying TID is unchanged (that random
    /// I/O *is* the index scan's cost profile); what batching removes is
    /// the per-tuple dispatch and the full decode of residual-failing rows.
    fn next_batch(&mut self, max: usize) -> Result<Option<RowBatch>> {
        let Some(cursor) = self.cursor.as_mut() else {
            return Err(smooth_types::Error::exec("IndexScan::next_batch before open"));
        };
        let max = max.max(1);
        let mut rows = Vec::new();
        let cpu = *self.storage.cpu();
        while rows.len() < max {
            let Some((_, tid)) = cursor.next() else { break };
            let page = self.storage.read_heap_page(&self.heap, tid.page)?;
            self.storage.clock().charge_cpu(cpu.inspect_tuple_ns);
            let view = PageView::new(&page)?;
            let bytes = view.get(tid.slot)?;
            if let Some(row) = self.filter.filter_decode(self.heap.schema(), bytes)? {
                self.storage.clock().charge_cpu(cpu.emit_tuple_ns);
                rows.push(row);
            }
        }
        Ok((!rows.is_empty()).then(|| RowBatch::from_rows(rows)))
    }

    /// Columnar index scan: same probe loop as the batched path, but
    /// qualifiers decode straight into column vectors.
    fn next_columns(&mut self, max: usize) -> Result<Option<ColumnBatch>> {
        let Some(cursor) = self.cursor.as_mut() else {
            return Err(smooth_types::Error::exec("IndexScan::next_columns before open"));
        };
        let max = max.max(1);
        let mut out = ColumnBatch::for_schema(self.heap.schema());
        let cpu = *self.storage.cpu();
        while out.physical_rows() < max {
            let Some((_, tid)) = cursor.next() else { break };
            let page = self.storage.read_heap_page(&self.heap, tid.page)?;
            let view = PageView::new(&page)?;
            let bytes = view.get(tid.slot)?;
            let (_, emitted) =
                self.filter.fill_columns(self.heap.schema(), &[bytes], Some(&page), &mut out)?;
            self.storage.clock().charge_cpu(cpu.inspect_tuple_ns + cpu.emit_tuple_ns * emitted);
        }
        Ok((!out.is_empty()).then_some(out))
    }

    fn close(&mut self) -> Result<()> {
        self.cursor = None;
        Ok(())
    }

    fn label(&self) -> String {
        format!("IndexScan({} via {})", self.heap.name(), self.index.name())
    }
}

/// One coalesced fetch of the Sort Scan: a page run plus the qualifying
/// slots within it.
struct PrefetchRun {
    start: u32,
    len: u32,
    /// `(page, sorted slots)` pairs for pages in this run that hold results.
    page_slots: Vec<(u32, Vec<u16>)>,
}

/// Sort Scan (Bitmap Heap Scan): blocking TID sort, then page-ordered fetch.
///
/// Like [`FullTableScan`], the refill is columnar-native: only the
/// qualifying slots the bitmap named are probed (PR 2's `ScanFilter`
/// encoded-tuple pushdown, now applied to the TID-ordered refill on every
/// protocol), and qualifiers decode straight into the shared
/// [`smooth_types::ColumnBuffer`].
pub struct SortScan {
    heap: Arc<HeapFile>,
    index: Arc<BTreeIndex>,
    storage: Storage,
    lo: Bound<i64>,
    hi: Bound<i64>,
    filter: ScanFilter,
    prefetch_gap: u32,
    runs: VecDeque<PrefetchRun>,
    out: smooth_types::ColumnBuffer,
}

impl SortScan {
    /// Build a Sort Scan over `[lo, hi]` of `index`.
    pub fn new(
        heap: Arc<HeapFile>,
        index: Arc<BTreeIndex>,
        storage: Storage,
        lo: Bound<i64>,
        hi: Bound<i64>,
        residual: Predicate,
    ) -> Self {
        let filter = ScanFilter::new(residual, heap.schema());
        let out = smooth_types::ColumnBuffer::for_schema(heap.schema());
        SortScan {
            heap,
            index,
            storage,
            lo,
            hi,
            filter,
            prefetch_gap: SORT_SCAN_PREFETCH_GAP,
            runs: VecDeque::new(),
            out,
        }
    }

    /// Override the prefetch gap (ablation benches).
    pub fn with_prefetch_gap(mut self, gap: u32) -> Self {
        self.prefetch_gap = gap;
        self
    }

    /// Refill from the next coalesced prefetch run(s). Returns `false`
    /// once all runs are consumed.
    fn refill(&mut self) -> Result<bool> {
        debug_assert!(self.out.is_drained());
        loop {
            let Some(run) = self.runs.pop_front() else { return Ok(false) };
            let pages = self.storage.read_heap_run(&self.heap, PageId(run.start), run.len)?;
            self.storage.charge_page_probes(run.len as u64);
            for (page_no, slots) in &run.page_slots {
                let idx = (page_no - run.start) as usize;
                let (_, page) = &pages[idx];
                let view = PageView::new(page)?;
                fill_page_columns(
                    &self.storage,
                    &mut self.filter,
                    self.heap.schema(),
                    page,
                    &view,
                    slots.iter().copied(),
                    self.out.fill(),
                )?;
            }
            if !self.out.is_drained() {
                return Ok(true);
            }
        }
    }
}

impl Operator for SortScan {
    fn schema(&self) -> &Schema {
        self.heap.schema()
    }

    fn open(&mut self) -> Result<()> {
        self.runs.clear();
        self.out.reset();
        // Phase 1 (blocking): drain the index range.
        let mut tids: Vec<Tid> = self
            .index
            .range(&self.storage, self.lo, self.hi)
            .collect_all()
            .into_iter()
            .map(|(_, tid)| tid)
            .collect();
        // Phase 2: sort TIDs in physical (page-major) order.
        let n = tids.len() as u64;
        if n > 1 {
            self.storage.clock().charge_cpu(self.storage.cpu().sort_cmp_ns * n * n.ilog2() as u64);
        }
        tids.sort_unstable();
        // Phase 3: group by page, then coalesce ascending pages whose gaps
        // fit the prefetch window into single runs.
        let mut page_slots: Vec<(u32, Vec<u16>)> = Vec::new();
        for tid in tids {
            match page_slots.last_mut() {
                Some((p, slots)) if *p == tid.page.0 => slots.push(tid.slot),
                _ => page_slots.push((tid.page.0, vec![tid.slot])),
            }
        }
        let mut current: Option<PrefetchRun> = None;
        for (page, slots) in page_slots {
            match current.as_mut() {
                Some(run) if page - (run.start + run.len - 1) <= self.prefetch_gap => {
                    run.len = page - run.start + 1;
                    run.page_slots.push((page, slots));
                }
                _ => {
                    if let Some(done) = current.take() {
                        self.runs.push_back(done);
                    }
                    current =
                        Some(PrefetchRun { start: page, len: 1, page_slots: vec![(page, slots)] });
                }
            }
        }
        if let Some(done) = current.take() {
            self.runs.push_back(done);
        }
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>> {
        loop {
            if let Some(row) = self.out.pop_row() {
                return Ok(Some(row));
            }
            if !self.refill()? {
                return Ok(None);
            }
        }
    }

    /// Batched Sort Scan: one coalesced prefetch run per refill, with the
    /// same probe-then-decode pushdown and per-page CPU charging as the
    /// batched full scan — but only the qualifying slots of each page are
    /// inspected (the bitmap already named them).
    fn next_batch(&mut self, max: usize) -> Result<Option<RowBatch>> {
        let max = max.max(1);
        loop {
            if !self.out.is_drained() {
                return Ok(Some(RowBatch::from_rows(self.out.pop_rows(max))));
            }
            if !self.refill()? {
                return Ok(None);
            }
        }
    }

    /// Columnar Sort Scan: qualifiers of each prefetch run leave as
    /// column vectors without row materialization.
    fn next_columns(&mut self, max: usize) -> Result<Option<ColumnBatch>> {
        let max = max.max(1);
        loop {
            if let Some(batch) = self.out.pop_columns(max) {
                return Ok(Some(batch));
            }
            if !self.refill()? {
                return Ok(None);
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        self.runs.clear();
        self.out.reset();
        Ok(())
    }

    fn label(&self) -> String {
        format!("SortScan({} via {})", self.heap.name(), self.index.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smooth_storage::{CpuCosts, DeviceProfile, HeapLoader, StorageConfig};
    use smooth_types::{Column, DataType, Schema, Value};

    /// 3000-row table; c0 = row number, c1 = pseudo-random in [0, 1000).
    fn table() -> (Arc<HeapFile>, Arc<BTreeIndex>) {
        let schema = Schema::new(vec![
            Column::new("c0", DataType::Int64),
            Column::new("c1", DataType::Int64),
            Column::new("pad", DataType::Text),
        ])
        .unwrap();
        let mut l = HeapLoader::new_mem("t", schema);
        for i in 0..3000i64 {
            let c1 = (i * 2654435761 % 1000 + 1000) % 1000;
            l.push(&Row::new(vec![Value::Int(i), Value::Int(c1), Value::str("x".repeat(40))]))
                .unwrap();
        }
        let heap = Arc::new(l.finish().unwrap());
        let index = Arc::new(BTreeIndex::build_from_heap("i_c1", &heap, 1).unwrap());
        (heap, index)
    }

    fn storage() -> Storage {
        Storage::new(StorageConfig {
            device: DeviceProfile::custom("t", 1, 10),
            cpu: CpuCosts::default(),
            pool_pages: 128,
        })
    }

    fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
        rows.sort_by_key(|r| r.int(0).unwrap());
        rows
    }

    #[test]
    fn all_three_paths_agree_on_results() {
        let (heap, index) = table();
        let s = storage();
        let pred = Predicate::int_half_open(1, 0, 120);
        let mut full = FullTableScan::new(Arc::clone(&heap), s.clone(), pred.clone());
        let expected = sorted(crate::operator::collect_rows(&mut full).unwrap());
        assert!(!expected.is_empty());

        let mut is = IndexScan::new(
            Arc::clone(&heap),
            Arc::clone(&index),
            s.clone(),
            Bound::Included(0),
            Bound::Excluded(120),
            Predicate::True,
        );
        assert_eq!(sorted(crate::operator::collect_rows(&mut is).unwrap()), expected);

        let mut ss = SortScan::new(
            Arc::clone(&heap),
            Arc::clone(&index),
            s.clone(),
            Bound::Included(0),
            Bound::Excluded(120),
            Predicate::True,
        );
        assert_eq!(sorted(crate::operator::collect_rows(&mut ss).unwrap()), expected);
    }

    #[test]
    fn index_scan_emits_in_key_order() {
        let (heap, index) = table();
        let s = storage();
        let mut is = IndexScan::new(
            heap,
            index,
            s,
            Bound::Included(100),
            Bound::Excluded(300),
            Predicate::True,
        );
        let rows = crate::operator::collect_rows(&mut is).unwrap();
        let keys: Vec<i64> = rows.iter().map(|r| r.int(1).unwrap()).collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        assert!(keys.iter().all(|&k| (100..300).contains(&k)));
    }

    #[test]
    fn sort_scan_emits_in_page_order() {
        let (heap, index) = table();
        let s = storage();
        let mut ss = SortScan::new(
            heap,
            index,
            s,
            Bound::Included(0),
            Bound::Excluded(500),
            Predicate::True,
        );
        let rows = crate::operator::collect_rows(&mut ss).unwrap();
        // c0 is the load order == physical order.
        let c0: Vec<i64> = rows.iter().map(|r| r.int(0).unwrap()).collect();
        assert!(c0.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn full_scan_io_is_selectivity_independent() {
        let (heap, _) = table();
        let s = storage();
        let mut narrow = FullTableScan::new(Arc::clone(&heap), s.clone(), Predicate::int_eq(1, 3));
        crate::operator::collect_rows(&mut narrow).unwrap();
        let narrow_io = s.io_snapshot().pages_read;
        s.reset_metrics();
        s.flush_pool();
        let mut wide = FullTableScan::new(Arc::clone(&heap), s.clone(), Predicate::True);
        crate::operator::collect_rows(&mut wide).unwrap();
        let wide_io = s.io_snapshot().pages_read;
        assert_eq!(narrow_io, wide_io);
        assert_eq!(wide_io, heap.page_count() as u64);
    }

    #[test]
    fn full_scan_uses_few_requests() {
        let (heap, _) = table();
        let s = storage();
        let mut f = FullTableScan::new(Arc::clone(&heap), s.clone(), Predicate::True);
        crate::operator::collect_rows(&mut f).unwrap();
        let io = s.io_snapshot();
        let expected = (heap.page_count() as u64).div_ceil(FULL_SCAN_READAHEAD as u64);
        assert_eq!(io.io_requests, expected);
        assert!(io.seq_pages > io.rand_pages);
    }

    #[test]
    fn index_scan_costs_grow_with_selectivity_sort_scan_reads_pages_once() {
        let (heap, index) = table();
        // A pool far smaller than the heap, so the index scan's repeated
        // page visits actually hit the device (cold-cache regime).
        let s = Storage::new(StorageConfig {
            device: DeviceProfile::custom("t", 1, 10),
            cpu: CpuCosts::default(),
            pool_pages: 4,
        });
        // Index scan, 50% selectivity: many random accesses, repeats.
        let mut is = IndexScan::new(
            Arc::clone(&heap),
            Arc::clone(&index),
            s.clone(),
            Bound::Included(0),
            Bound::Excluded(500),
            Predicate::True,
        );
        crate::operator::collect_rows(&mut is).unwrap();
        let is_io = s.io_snapshot();
        s.reset_metrics();
        s.flush_pool();
        let mut ss = SortScan::new(
            Arc::clone(&heap),
            Arc::clone(&index),
            s.clone(),
            Bound::Included(0),
            Bound::Excluded(500),
            Predicate::True,
        );
        crate::operator::collect_rows(&mut ss).unwrap();
        let ss_io = s.io_snapshot();
        // Sort scan never rereads a heap page; index scan (tiny pool) does.
        assert!(is_io.pages_read > ss_io.distinct_pages);
        assert!(ss_io.io_requests < is_io.io_requests);
    }

    #[test]
    fn residual_predicates_filter_fetched_rows() {
        let (heap, index) = table();
        let s = storage();
        let residual = Predicate::int_lt(0, 1500); // on c0, not the index key
        let mut is =
            IndexScan::new(heap, index, s, Bound::Included(0), Bound::Excluded(1000), residual);
        let rows = crate::operator::collect_rows(&mut is).unwrap();
        assert_eq!(rows.len(), 1500);
        assert!(rows.iter().all(|r| r.int(0).unwrap() < 1500));
    }

    #[test]
    fn empty_range_yields_nothing() {
        let (heap, index) = table();
        let s = storage();
        for op in [
            &mut IndexScan::new(
                Arc::clone(&heap),
                Arc::clone(&index),
                s.clone(),
                Bound::Included(5000),
                Bound::Unbounded,
                Predicate::True,
            ) as &mut dyn Operator,
            &mut SortScan::new(
                heap,
                index,
                s.clone(),
                Bound::Included(5000),
                Bound::Unbounded,
                Predicate::True,
            ),
        ] {
            assert!(crate::operator::collect_rows(op).unwrap().is_empty());
        }
    }
}
