//! Morsel-driven parallel pipeline execution (HyPer-style).
//!
//! A [`ParallelPipeline`] runs one query pipeline across a fixed worker
//! pool: workers pull columnar morsels from a shared source, push each
//! morsel through a per-worker chain of [`StageSpec`]s (filter, projection,
//! hash-join probe) with thread-local state, fold it into a per-worker
//! partial aggregate where that is exact, and hand everything else to an
//! *ordered* sink that merges morsels back into source order. The
//! result is **deterministic and byte-identical** to the single-threaded
//! columnar driver ([`crate::collect_rows`]), and the total virtual
//! CPU/IO clock charges are **exactly equal** to the single-threaded
//! run. Two structural decisions make that possible:
//!
//! * **Source sections are serialized in morsel order.** The disk model
//!   ([`smooth_storage::Storage`]) classifies a transfer as sequential
//!   or random by whether it physically continues the previous one, and
//!   buffer-pool residency depends on access order — so all charged I/O
//!   happens inside the source lock, in exactly the order the
//!   single-threaded driver would issue it. For a heap scan the lock
//!   covers only the page-run fetch (readahead-sized, cheap — a pool
//!   probe plus a memcpy per page); the expensive part, probing encoded
//!   tuples and decoding qualifiers into column vectors, runs on the
//!   claiming worker *outside* the lock with a thread-local
//!   [`ScanFilter`]. For any other operator (Smooth Scan, Switch Scan,
//!   index/sort scans, sorts) the whole operator *is* the serial
//!   section: adaptive morph decisions stay centralized in one operator
//!   instance, untouched by parallelism, exactly as the single-threaded
//!   driver runs them.
//! * **Worker-side charges are per-tuple, never per-batch-boundary.**
//!   Every stage charges the shared virtual clock (lock-free atomics —
//!   the contention-light accounting core) the same per-row amounts the
//!   serial operators charge, so totals are independent of how rows are
//!   grouped into morsels and of which worker processed them.
//!
//! Pipeline breakers merge deterministically. Hash-join builds are their
//! own parallel phase, run before the probe phase starts: each
//! [`BuildSpec`] carries a morsel source (and filter/projection/nested
//! probe stages) of its own plus an open tranche
//! ([`BuildSpec::open_at`]/[`BuildSpec::open_order`] — the serial
//! driver's open cascade, generalized to bushy trees), workers claim
//! build morsels under the source lock (so build-input I/O happens in
//! the exact serial order) and fold them into per-worker
//! **hash-partitioned** partial builds ([`crate::JoinBuildPartial`]: a
//! payload [`ColumnBatch`] plus position-keyed match lists — no
//! `Vec<Row>` anywhere), which then merge by global build position
//! ([`crate::JoinBuildTable::merge_partition`]) — mirroring the
//! aggregate sink's first-seen-position rule, so the probe table is
//! byte-identical to the serial [`crate::HashJoin`] build no matter
//! which worker ingested which morsel. Grouped aggregates use
//! per-worker partial maps merged by global first-seen `(seq, idx)`
//! position when the merge is exact ([`AggFunc::merge_exact`]), and
//! otherwise fold on the ordered sink in morsel order so float sums
//! stay byte-identical; plain row output is concatenated in morsel
//! order, and `ordered:` heap-range scans sort on the sink
//! ([`SinkSpec::Sort`] — the serial `Sort` operator's exact charges,
//! stable over serial-order input, recorded as the ledger's serial
//! suffix).
//!
//! Multi-worker execution lives in [`crate::schedule`]: the worker pool
//! belongs to a persistent [`crate::Scheduler`] serving *queries* (each
//! an independent phase state machine with its own source lock,
//! per-worker work-stealing morsel deques, and sink), not to a single
//! pipeline run. [`run_pipeline`] at `workers > 1` submits the pipeline
//! as the sole query of an ephemeral scheduler; this module keeps the
//! specs, the per-morsel machinery (sources, stages, partial sinks) and
//! the single-worker inline driver that the traced ledger runs on.
//!
//! [`run_pipeline_traced`] additionally records a per-morsel
//! virtual-clock ledger ([`ScalingLedger`]) — with separate build-phase
//! sections and a serial suffix — from which a deterministic scaling
//! model predicts the parallel makespan at any worker count: a
//! discrete-event replay of the scheduler's own policy (chunked
//! claiming via `claim_size`, per-worker queues, steal-from-longest
//! with the [`STEAL_PENALTY_PERMILLE`] locality surcharge on stolen
//! morsels — modeled only; execution charges nothing for a steal). The
//! perf-smoke `parallel`, `join` and `serve` experiments gate on that
//! model because, unlike wall clock on a shared CI runner (or this
//! repo's build hosts), it is bit-stable across machines. See
//! `docs/scheduler_v2.md`.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::Arc;

use smooth_storage::{HeapFile, PageBuf, PageView, Storage};
use smooth_types::{ColumnBatch, Error, PageId, Result, Row, Schema, Value};

use crate::agg::Acc;
use crate::expr::{Predicate, ScanFilter};
use crate::join::{JoinBuildPartial, JoinBuildTable};
use crate::operator::BoxedOperator;
use crate::scan::fill_page_columns;
use crate::{AggFunc, JoinType};

/// A unit of work flowing between stages: columnar end to end in the
/// default pipeline (the probe stage emits gathered columnar batches);
/// the row variant remains for generality.
#[derive(Debug)]
pub enum Morsel {
    /// Columnar morsel (possibly carrying a selection vector).
    Cols(ColumnBatch),
    /// Materialized rows.
    Rows(Vec<Row>),
}

impl Morsel {
    /// Live rows in the morsel.
    pub fn len(&self) -> usize {
        match self {
            Morsel::Cols(b) => b.len(),
            Morsel::Rows(r) => r.len(),
        }
    }

    /// `true` when no rows are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialize as rows (honoring any selection vector).
    pub fn into_rows(self) -> Vec<Row> {
        match self {
            Morsel::Cols(b) => b.into_rows(),
            Morsel::Rows(r) => r,
        }
    }

    /// Keep columnar morsels columnar; convert a stray row morsel into a
    /// batch of `schema`. The Collect sink folds through this, so its
    /// output never materializes rows inside the scheduler.
    pub fn into_batch(self, schema: &Schema) -> Result<ColumnBatch> {
        match self {
            Morsel::Cols(b) => Ok(b),
            Morsel::Rows(r) => ColumnBatch::from_rows(schema, &r),
        }
    }
}

/// Where morsels come from.
pub enum ParallelSource {
    /// A partitioned heap scan: workers claim readahead-sized page runs
    /// (I/O under the source lock, in page order), then probe + decode
    /// on their own thread via a thread-local [`ScanFilter`]. This is
    /// the fully parallel source — the CPU-heavy decode fans out.
    Heap {
        /// The heap to scan.
        heap: Arc<HeapFile>,
        /// Scan predicate (pushed into the per-worker [`ScanFilter`]).
        predicate: Predicate,
        /// Pages fetched per morsel (use
        /// [`crate::scan::FULL_SCAN_READAHEAD`] to match the serial
        /// scan's request pattern).
        readahead: u32,
    },
    /// Any operator as a serial morsel source: workers take turns
    /// pulling `next_columns(morsel_rows)` under the source lock. The
    /// operator runs exactly as it would single-threaded — this is how
    /// Smooth/Switch Scan morph accounting stays centralized — while
    /// the stages above it still fan out.
    Shared {
        /// The source operator (opened by the driver).
        op: BoxedOperator,
    },
}

impl ParallelSource {
    /// The schema of the morsels this source emits.
    pub(crate) fn schema(&self) -> Schema {
        match self {
            ParallelSource::Heap { heap, .. } => heap.schema().clone(),
            ParallelSource::Shared { op } => op.schema().clone(),
        }
    }
}

/// One hash-join build input: a pipeline of its own (morsel source plus
/// filter/projection stages), drained **before** the probe phase starts.
/// Build-input I/O serializes under the build source's lock in morsel
/// order — exactly the order the serial [`crate::HashJoin`] build would
/// issue it — while the per-row partition + map-insert CPU fans out
/// across the worker pool into per-worker [`JoinBuildPartial`]s.
pub struct BuildSpec {
    /// The build-side morsel source (right input).
    pub source: ParallelSource,
    /// Per-worker build-side stages: [`StageSpec::Filter`] /
    /// [`StageSpec::Project`] plus [`StageSpec::Probe`] against
    /// *earlier* builds — a hash join sitting on the build side of
    /// another hash join runs as a fully parallel build phase of its
    /// own instead of collapsing into a serial `Shared` source.
    pub stages: Vec<StageSpec>,
    /// Key ordinal in the build rows.
    pub right_col: usize,
    /// Key ordinal in the probe rows.
    pub left_col: usize,
    /// Join semantics.
    pub ty: JoinType,
    /// Hash partitions of the build table (probe results are independent
    /// of it; [`crate::BUILD_PARTITIONS`] is the default).
    pub partitions: usize,
    /// Operator memory budget in bytes for the build table (0 =
    /// unlimited); enforced after the partial merge, so every worker
    /// count charges identical spill I/O
    /// ([`crate::JoinBuildTable::apply_budget`]).
    pub mem_bytes: usize,
    /// How many builds must have *completed* before this build's source
    /// opens: the serial open cascade reaches its `open()` right after
    /// build `open_at - 1` drains (0 = opens during admission, before
    /// any build runs). Bushy trees open sources earlier than they
    /// drain, so this is independent of the build's own position.
    pub open_at: usize,
    /// Position of this source's `open()` among the build-source opens
    /// sharing the same `open_at` tranche — together they reproduce the
    /// serial cascade's exact open order, so sources whose `open()`
    /// charges the clock charge in the serial order.
    pub open_order: usize,
}

/// A per-worker morsel transform, declared against the build list.
#[derive(Clone)]
pub enum StageSpec {
    /// Keep rows satisfying the predicate (selection refinement on
    /// columnar morsels — no row moves).
    Filter(Predicate),
    /// Keep the listed columns, in order (column pruning).
    Project(Vec<usize>),
    /// Probe the `i`-th build table; emits gathered columnar batches.
    Probe(usize),
}

/// What happens to the ordered morsel stream at the pipeline end.
pub enum SinkSpec {
    /// Concatenate rows in morsel order.
    Collect,
    /// Grouped / scalar aggregation.
    Aggregate {
        /// Group-by ordinals (empty = scalar).
        group_cols: Vec<usize>,
        /// Aggregates per group.
        aggs: Vec<AggFunc>,
        /// When every aggregate merges exactly
        /// ([`AggFunc::merge_exact`]), workers hold partial maps merged
        /// by first-seen position; otherwise the sink folds morsels in
        /// order on the coordinator, keeping float sums byte-identical
        /// to the serial fold.
        merge_exact: bool,
    },
    /// Ordered-scan terminal: workers stream morsels to the sink in
    /// morsel order (exactly like `Collect`) and one final
    /// `sort_rows_charged` pass — the identical charge
    /// the serial [`crate::Sort`] operator above a full scan makes —
    /// restores global key order as the query's serial suffix
    /// ([`ScalingLedger::suffix_ns`] in the model). This is what lets
    /// `ordered:` plans use the fully parallel heap source instead of
    /// the serial shared-operator fallback.
    Sort {
        /// Sort keys (the ordered scan's range column, ascending).
        keys: Vec<crate::sort::SortKey>,
        /// Memory budget for the final sort (0 = unlimited; beyond it
        /// the sort goes external, charging spill I/O exactly as the
        /// serial operator would).
        mem_bytes: usize,
    },
}

/// A decomposed pipeline ready for the worker pool.
pub struct ParallelPipeline {
    /// Morsel source.
    pub source: ParallelSource,
    /// Hash-join builds, bottom-up (the order the serial open cascade
    /// would drain them). Each is a parallel phase of its own.
    pub builds: Vec<BuildSpec>,
    /// Per-worker stages, source side first.
    pub stages: Vec<StageSpec>,
    /// Terminal merge.
    pub sink: SinkSpec,
    /// Shared storage handle (clock + pool the whole pipeline charges).
    pub storage: Storage,
    /// Rows per morsel for [`ParallelSource::Shared`] pulls (the serial
    /// driver's `batch_size()` to match it exactly).
    pub morsel_rows: usize,
}

/// A shared, read-only hash-join probe table: the merged columnar build
/// plus the probe-side key ordinal and join semantics.
pub(crate) struct ProbeTable {
    pub(crate) table: JoinBuildTable,
    pub(crate) left_col: usize,
    pub(crate) ty: JoinType,
}

/// A runtime stage (build references resolved; the probe stage carries
/// its output schema so gathered batches type correctly).
#[derive(Clone)]
pub(crate) enum Stage {
    Filter(Predicate),
    Project(Vec<usize>),
    Probe(Arc<ProbeTable>, Schema),
}

impl Stage {
    fn apply(&self, storage: &Storage, morsel: Morsel) -> Result<Morsel> {
        match self {
            Stage::Filter(pred) => match morsel {
                Morsel::Cols(mut batch) => {
                    let selection = pred.filter_batch(&batch)?;
                    batch.set_selection(selection);
                    Ok(Morsel::Cols(batch))
                }
                Morsel::Rows(rows) => {
                    let mut kept = Vec::with_capacity(rows.len());
                    for row in rows {
                        if pred.eval(&row)? {
                            kept.push(row);
                        }
                    }
                    Ok(Morsel::Rows(kept))
                }
            },
            Stage::Project(cols) => match morsel {
                Morsel::Cols(batch) => Ok(Morsel::Cols(batch.project(cols)?)),
                Morsel::Rows(rows) => Ok(Morsel::Rows(
                    rows.into_iter()
                        .map(|row| Row::new(cols.iter().map(|&c| row.get(c).clone()).collect()))
                        .collect(),
                )),
            },
            Stage::Probe(table, out_schema) => probe_morsel(table, out_schema, storage, morsel),
        }
    }
}

/// Probe one morsel against a build table via the shared probe loop
/// ([`JoinBuildTable::probe_columns`] — the exact code the serial
/// [`crate::HashJoin`] runs, so the charge model lives in one place):
/// output gathers probe columns and matched payload columns straight
/// into a fresh columnar batch — no `Row` materializes.
fn probe_morsel(
    table: &ProbeTable,
    out_schema: &Schema,
    storage: &Storage,
    morsel: Morsel,
) -> Result<Morsel> {
    let cpu = *storage.cpu();
    let clock = storage.clock();
    match morsel {
        Morsel::Cols(batch) => {
            let mut out = ColumnBatch::for_schema(out_schema);
            table.table.probe_columns(storage, &batch, table.left_col, table.ty, &mut out)?;
            Ok(Morsel::Cols(out))
        }
        Morsel::Rows(rows) => {
            let mut out = Vec::new();
            for left_row in rows {
                clock.charge_cpu(cpu.hash_op_ns);
                let key = left_row.get(table.left_col);
                if key.is_null() {
                    continue;
                }
                let Some(matches) = table.table.matches(key) else { continue };
                match table.ty {
                    JoinType::Inner => {
                        clock.charge_cpu(cpu.emit_tuple_ns * matches.len() as u64);
                        out.extend(
                            matches.iter().map(|&m| left_row.concat(&table.table.payload_row(m))),
                        );
                    }
                    JoinType::LeftSemi => {
                        clock.charge_cpu(cpu.emit_tuple_ns);
                        out.push(left_row);
                    }
                }
            }
            Ok(Morsel::Rows(out))
        }
    }
}

/// Global first-seen position of a group: (morsel seq, index within the
/// morsel). Minimizing over workers reproduces the serial first-seen
/// group order exactly.
type FirstPos = (u64, u64);

/// A (partial) grouped-aggregation state — per worker when the merge is
/// exact, on the ordered sink otherwise. Accumulator semantics and
/// clock charges mirror [`crate::HashAggregate`] exactly.
pub(crate) struct PartialAgg {
    group_cols: Vec<usize>,
    aggs: Vec<AggFunc>,
    groups: HashMap<Vec<Value>, (FirstPos, Vec<Acc>)>,
}

impl PartialAgg {
    pub(crate) fn new(group_cols: &[usize], aggs: &[AggFunc]) -> Self {
        PartialAgg { group_cols: group_cols.to_vec(), aggs: aggs.to_vec(), groups: HashMap::new() }
    }

    /// Fold one morsel in, charging `(hash + update·|aggs|)` per live
    /// row — the serial operator's per-batch bulk charge, which is
    /// per-row underneath and therefore boundary-independent.
    pub(crate) fn update(&mut self, storage: &Storage, seq: u64, morsel: &Morsel) -> Result<()> {
        let cpu = *storage.cpu();
        storage.clock().charge_cpu(
            (cpu.hash_op_ns + cpu.agg_update_ns * self.aggs.len() as u64) * morsel.len() as u64,
        );
        // A partial is no longer fed by one worker in monotone seq
        // order: the scheduler's slot pool hands a partial to whichever
        // worker frees up next, so one slot can fold seq 3 before
        // seq 2. Minimizing the first-seen position on *every* row (not
        // just on insert) keeps the recorded position equal to the
        // global first occurrence regardless of fold order.
        let PartialAgg { group_cols, aggs, groups } = self;
        match morsel {
            Morsel::Cols(batch) => {
                for (idx, phys) in batch.live_rows().enumerate() {
                    let key: Vec<Value> =
                        group_cols.iter().map(|&c| batch.column(c).value(phys)).collect();
                    let (pos, accs) = groups.entry(key).or_insert_with(|| {
                        ((u64::MAX, u64::MAX), aggs.iter().map(Acc::new).collect())
                    });
                    *pos = (*pos).min((seq, idx as u64));
                    for (acc, f) in accs.iter_mut().zip(aggs.iter()) {
                        acc.update_columns(f, batch, phys)?;
                    }
                }
            }
            Morsel::Rows(rows) => {
                for (idx, row) in rows.iter().enumerate() {
                    let key: Vec<Value> = group_cols.iter().map(|&c| row.get(c).clone()).collect();
                    let (pos, accs) = groups.entry(key).or_insert_with(|| {
                        ((u64::MAX, u64::MAX), aggs.iter().map(Acc::new).collect())
                    });
                    *pos = (*pos).min((seq, idx as u64));
                    for (acc, f) in accs.iter_mut().zip(aggs.iter()) {
                        acc.update_values(f, row.values())?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Combine another worker's partial in (order-independent: the
    /// caller guarantees every aggregate merges exactly).
    pub(crate) fn merge(&mut self, other: PartialAgg) {
        for (key, (pos, accs)) in other.groups {
            match self.groups.entry(key) {
                Entry::Vacant(slot) => {
                    slot.insert((pos, accs));
                }
                Entry::Occupied(mut slot) => {
                    let (cur_pos, cur_accs) = slot.get_mut();
                    *cur_pos = (*cur_pos).min(pos);
                    for (a, b) in cur_accs.iter_mut().zip(accs) {
                        a.merge(b);
                    }
                }
            }
        }
    }

    /// Emit the groups in global first-seen order (a scalar aggregate
    /// over empty input still yields one row, as in the serial
    /// operator).
    pub(crate) fn finish(mut self) -> Vec<Row> {
        if self.groups.is_empty() && self.group_cols.is_empty() {
            self.groups.insert(Vec::new(), ((0, 0), self.aggs.iter().map(Acc::new).collect()));
        }
        let mut entries: Vec<_> = self.groups.into_iter().collect();
        entries.sort_by_key(|(_, (pos, _)): &(Vec<Value>, (FirstPos, Vec<Acc>))| *pos);
        entries
            .into_iter()
            .map(|(key, (_, accs))| {
                let mut values = key;
                values.extend(accs.into_iter().map(Acc::finish));
                Row::new(values)
            })
            .collect()
    }
}

/// What the source hands a worker under the lock.
pub(crate) enum SourceItem {
    /// A page run still to be probed + decoded (worker-side CPU).
    Pages(Vec<(PageId, PageBuf)>),
    /// A ready columnar morsel pulled from a shared operator.
    Batch(ColumnBatch),
}

/// The serial section: pulled in morsel order under one lock, so all
/// charged I/O happens in exactly the single-threaded order.
pub(crate) enum SourceCore {
    Heap { heap: Arc<HeapFile>, next: u32, readahead: u32 },
    Shared { op: BoxedOperator, max: usize },
}

impl SourceCore {
    pub(crate) fn pull(&mut self, storage: &Storage) -> Result<Option<SourceItem>> {
        match self {
            SourceCore::Heap { heap, next, readahead } => {
                let total = heap.page_count();
                if *next >= total {
                    return Ok(None);
                }
                let len = (*readahead).min(total - *next);
                let pages = storage.read_heap_run(heap, PageId(*next), len)?;
                *next += len;
                Ok(Some(SourceItem::Pages(pages)))
            }
            SourceCore::Shared { op, max } => Ok(op.next_columns(*max)?.map(SourceItem::Batch)),
        }
    }

    pub(crate) fn close(self) -> Result<()> {
        match self {
            SourceCore::Heap { .. } => Ok(()),
            SourceCore::Shared { mut op, .. } => op.close(),
        }
    }

    /// The heap file this source reads, if any — the coordinate
    /// scoped fault injection keys morsel-panic draws on (shared
    /// operator sources have no file attribution).
    pub(crate) fn file_id(&self) -> Option<smooth_storage::FileId> {
        match self {
            SourceCore::Heap { heap, .. } => Some(heap.file_id()),
            SourceCore::Shared { .. } => None,
        }
    }

    /// Morsels left to pull, when the source can tell: a heap scan
    /// knows its remaining page runs, so guided chunk claiming
    /// ([`claim_size`]) can size lock holds; a shared operator cannot,
    /// so its claims stay single-morsel.
    pub(crate) fn remaining_hint(&self) -> Option<usize> {
        match self {
            SourceCore::Heap { heap, next, readahead } => {
                let left = heap.page_count().saturating_sub(*next) as usize;
                Some(left.div_ceil((*readahead).max(1) as usize))
            }
            SourceCore::Shared { .. } => None,
        }
    }

    /// The schema of the morsels this source emits.
    pub(crate) fn schema(&self) -> Schema {
        match self {
            SourceCore::Heap { heap, .. } => heap.schema().clone(),
            SourceCore::Shared { op, .. } => op.schema().clone(),
        }
    }
}

/// Modeled NUMA-style locality penalty on stolen morsels, in permille:
/// a morsel processed by a worker other than the one whose local queue
/// held it costs 15% extra worker-side time **in the scaling model
/// only**. Execution never charges it — the virtual clock stays
/// byte-identical across worker counts — it prices remote-queue
/// traffic into the deterministic model so the perf gates reward
/// locality-preserving schedules over steal-happy ones.
pub const STEAL_PENALTY_PERMILLE: u64 = 150;

/// Morsels a worker claims from the source in one lock hold: the fixed
/// override when `fixed > 0` (the `SMOOTH_CLAIM_MORSELS` knob), else
/// guided self-scheduling — the remaining work split over twice the
/// pool, clamped to `[1, 64]` — so runs start large (amortizing lock
/// traffic) and shrink toward single morsels at the tail (keeping the
/// finish balanced). Execution and the scaling model share this one
/// formula so modeled chunk boundaries match the real ones.
pub(crate) fn claim_size(fixed: usize, remaining: usize, workers: usize) -> usize {
    if fixed > 0 {
        fixed
    } else {
        (remaining / (2 * workers.max(1))).clamp(1, 64)
    }
}

/// Claim size for a source given its [`SourceCore::remaining_hint`]:
/// hinted sources (heap scans) chunk via [`claim_size`]; hint-less
/// sources (Smooth/Switch shared operators, which run whole as the
/// serial section) always claim one morsel — even under a fixed
/// `SMOOTH_CLAIM_MORSELS` override, since queued chunks behind a serial
/// source can never fan out and only inflate the lock hold. Matches the
/// scaling model, which never chunks non-chunked sources.
pub(crate) fn source_claim(fixed: usize, hint: Option<usize>, workers: usize) -> usize {
    match hint {
        Some(remaining) => claim_size(fixed, remaining, workers),
        None => 1,
    }
}

/// An opened source: the locked core plus (for heap sources) the
/// thread-local decoder recipe workers instantiate per claim.
pub(crate) type OpenedSource = (SourceCore, Option<(Schema, Predicate)>);

/// Open a [`ParallelSource`] into its locked core plus (for heap
/// sources) the thread-local decoder recipe.
pub(crate) fn open_source(source: ParallelSource, morsel_rows: usize) -> Result<OpenedSource> {
    match source {
        ParallelSource::Heap { heap, predicate, readahead } => {
            let schema = heap.schema().clone();
            Ok((
                SourceCore::Heap { heap, next: 0, readahead: readahead.max(1) },
                Some((schema, predicate)),
            ))
        }
        ParallelSource::Shared { mut op } => {
            op.open()?;
            Ok((SourceCore::Shared { op, max: morsel_rows.max(1) }, None))
        }
    }
}

/// Thread-local decode state for the partitioned heap source.
pub(crate) struct HeapDecoder {
    schema: Schema,
    filter: ScanFilter,
}

impl HeapDecoder {
    pub(crate) fn new(schema: Schema, predicate: Predicate) -> Self {
        let filter = ScanFilter::new(predicate, &schema);
        HeapDecoder { schema, filter }
    }

    fn decode(&mut self, storage: &Storage, pages: &[(PageId, PageBuf)]) -> Result<ColumnBatch> {
        // The per-page buffer-pool probe CPU for this run is charged
        // here, on the decoding worker, not inside the source lock —
        // see [`Storage::charge_page_probes`]. Totals stay equal to the
        // serial scan (which charges beside its own `read_heap_run`
        // call) while the serialized source section holds only the
        // irreducible device I/O.
        storage.charge_page_probes(pages.len() as u64);
        let mut out = ColumnBatch::for_schema(&self.schema);
        for (_, page) in pages {
            let view = PageView::new(page)?;
            fill_page_columns(
                storage,
                &mut self.filter,
                &self.schema,
                page,
                &view,
                0..view.slot_count(),
                &mut out,
            )?;
        }
        Ok(out)
    }
}

/// Run one source item through the worker's stage chain.
pub(crate) fn process_item(
    item: SourceItem,
    decoder: &mut Option<HeapDecoder>,
    stages: &[Stage],
    storage: &Storage,
) -> Result<Morsel> {
    let mut morsel = match item {
        SourceItem::Batch(batch) => Morsel::Cols(batch),
        SourceItem::Pages(pages) => {
            let decoder = decoder
                .as_mut()
                .ok_or_else(|| Error::exec("heap source item reached a worker with no decoder"))?;
            Morsel::Cols(decoder.decode(storage, &pages)?)
        }
    };
    for stage in stages {
        morsel = stage.apply(storage, morsel)?;
    }
    Ok(morsel)
}

/// Per-morsel virtual-clock ledger recorded by
/// [`run_pipeline_traced`]: the deterministic input to the scaling
/// model. All values are virtual nanoseconds off the shared clock.
#[derive(Debug, Default, Clone)]
pub struct ScalingLedger {
    /// Serial prefix: source open (builds are traced separately below).
    pub prefix_ns: u64,
    /// Per-morsel build-phase source sections (serialized build-input
    /// I/O), concatenated across all builds in build order.
    pub build_src_ns: Vec<u64>,
    /// End index (exclusive) of each build's sections within the build
    /// vectors: the driver runs each build to completion before the next
    /// one starts, so the model must barrier between builds too.
    pub build_bounds: Vec<usize>,
    /// Per-morsel build-phase worker sections (decode, build stages,
    /// key partitioning and map inserts) — these fan out across the
    /// pool.
    pub build_proc_ns: Vec<u64>,
    /// Per-morsel source-section charges (I/O + in-lock CPU) — a
    /// serialized resource.
    pub src_ns: Vec<u64>,
    /// Per-morsel worker-side charges (decode, stages, exact partial
    /// aggregation) — these fan out across the pool.
    pub proc_ns: Vec<u64>,
    /// Per-morsel ordered-sink charges (the order-preserving aggregate
    /// fold when the merge is not exact) — a second serialized resource.
    pub sink_ns: Vec<u64>,
    /// Serial suffix after the last morsel: the ordered-scan sink's
    /// final sort pass ([`SinkSpec::Sort`]) — one thread, after every
    /// worker drained.
    pub suffix_ns: u64,
    /// Whether each build phase's source supports chunked claiming
    /// (heap-backed — one entry per recorded build bound). Shared
    /// operator sources claim one morsel per lock hold.
    pub build_chunked: Vec<bool>,
    /// Whether the probe phase's source supports chunked claiming.
    pub src_chunked: bool,
}

impl ScalingLedger {
    /// Total virtual time of the single-threaded run.
    pub fn total_ns(&self) -> u64 {
        self.prefix_ns
            + self.build_src_ns.iter().sum::<u64>()
            + self.build_proc_ns.iter().sum::<u64>()
            + self.src_ns.iter().sum::<u64>()
            + self.proc_ns.iter().sum::<u64>()
            + self.sink_ns.iter().sum::<u64>()
            + self.suffix_ns
    }

    /// The per-build section ranges within the build vectors. The driver
    /// runs each build to completion before the next starts, so each
    /// range schedules behind a barrier; sections past the last recorded
    /// bound (or all of them, when no bounds were recorded) form a final
    /// segment so the model never silently drops work.
    fn build_segments(&self) -> Vec<std::ops::Range<usize>> {
        let mut segments = Vec::with_capacity(self.build_bounds.len() + 1);
        let mut start = 0usize;
        for &end in &self.build_bounds {
            let end = end.min(self.build_src_ns.len());
            if end > start {
                segments.push(start..end);
            }
            start = start.max(end);
        }
        if start < self.build_src_ns.len() {
            segments.push(start..self.build_src_ns.len());
        }
        segments
    }

    /// Deterministic makespan of the pipeline at `workers` workers,
    /// from the unified scheduling model (`simulate`): build phases
    /// first (each with its own source serialization, chunked claiming,
    /// work stealing and completion barrier), then the probe phase,
    /// then the serial suffix.
    pub fn makespan_ns(&self, workers: usize) -> u64 {
        simulate(std::slice::from_ref(self), workers, 1).0
    }

    /// Modeled speedup over the single-worker makespan (which equals
    /// [`ScalingLedger::total_ns`] — the serial run — by construction).
    pub fn speedup(&self, workers: usize) -> f64 {
        self.makespan_ns(1) as f64 / self.makespan_ns(workers).max(1) as f64
    }

    /// Modeled time workers spend blocked on the serialized source lock
    /// at `workers` workers, summed over every build phase and the
    /// probe phase. Zero at one worker by construction (the sole worker
    /// never races itself for the lock); growth with the worker count
    /// measures how source-bound the pipeline is.
    pub fn modeled_src_wait_ns(&self, workers: usize) -> u64 {
        simulate(std::slice::from_ref(self), workers, 1).1
    }

    /// Makespan of the build phases alone (no prefix, no probe phase,
    /// no suffix).
    pub fn build_makespan_ns(&self, workers: usize) -> u64 {
        let builds_only = ScalingLedger {
            prefix_ns: 0,
            suffix_ns: 0,
            src_ns: Vec::new(),
            proc_ns: Vec::new(),
            sink_ns: Vec::new(),
            src_chunked: false,
            ..self.clone()
        };
        simulate(std::slice::from_ref(&builds_only), workers, 1).0
    }

    /// Modeled speedup of the blocking build phase alone — what the
    /// partitioned parallel build buys over the serial build.
    pub fn build_speedup(&self, workers: usize) -> f64 {
        self.build_makespan_ns(1) as f64 / self.build_makespan_ns(workers).max(1) as f64
    }

    /// The per-phase morsel sections in execution order: every build
    /// segment (source + worker sections, no sink) followed by the
    /// probe phase (source + worker + ordered-sink sections). Input to
    /// the unified scheduling model.
    fn phases(&self) -> Vec<SimPhase<'_>> {
        let mut phases: Vec<SimPhase<'_>> = self
            .build_segments()
            .into_iter()
            .enumerate()
            .map(|(i, seg)| SimPhase {
                src: &self.build_src_ns[seg.clone()],
                proc: &self.build_proc_ns[seg],
                sink: None,
                chunked: self.build_chunked.get(i).copied().unwrap_or(false),
            })
            .collect();
        phases.push(SimPhase {
            src: &self.src_ns,
            proc: &self.proc_ns,
            sink: Some(&self.sink_ns),
            chunked: self.src_chunked,
        });
        phases
    }
}

/// One phase of a traced query inside the scheduling model.
struct SimPhase<'a> {
    src: &'a [u64],
    proc: &'a [u64],
    /// Ordered-sink sections (probe phase only).
    sink: Option<&'a [u64]>,
    /// Heap-backed phases claim guided chunk runs ([`claim_size`]);
    /// shared-operator phases claim one morsel per lock hold — exactly
    /// what execution does.
    chunked: bool,
}

/// One claimed-but-unprocessed morsel sitting in a worker's local
/// queue, available to its owner (front pops) or to a stealing peer
/// (back pops, at the modeled locality penalty).
struct SimItem {
    query: usize,
    phase: usize,
    idx: usize,
    /// Earliest processing start: the end of the claim's source I/O.
    ready: u64,
}

/// One traced query's progress through its phases.
struct SimQuery<'a> {
    phases: Vec<SimPhase<'a>>,
    prefix_ns: u64,
    suffix_ns: u64,
    /// Current phase / next unclaimed morsel within it.
    phase: usize,
    next_src: usize,
    /// Morsels claimed into local queues but not yet processed — the
    /// phase cannot barrier past them.
    queued: usize,
    /// This phase's serialized source chain (one lock, one disk arm).
    src_free: u64,
    /// Ordered sink: per-morsel completion times buffer here and fold
    /// strictly in morsel order, exactly as the execution sink drains
    /// its seq-ordered reorder buffer.
    sink_done: Vec<Option<u64>>,
    sink_next: usize,
    sink_free: u64,
    /// Running completion max of the current phase (the barrier the
    /// next phase waits behind).
    phase_done: u64,
    /// Earliest time the current phase may start.
    avail: u64,
    admitted: bool,
    finished: Option<u64>,
}

impl SimQuery<'_> {
    fn admit(&mut self, at: u64) {
        self.admitted = true;
        // The serial prefix (source open) precedes the first claim.
        let start = at + self.prefix_ns;
        self.avail = start;
        self.src_free = start;
        self.sink_free = start;
        self.phase_done = start;
        self.enter_phase();
        self.advance();
    }

    /// Reset the per-phase sink reorder state for the current phase.
    fn enter_phase(&mut self) {
        let len = self.phases.get(self.phase).map_or(0, |p| p.src.len());
        self.sink_done = vec![None; len];
        self.sink_next = 0;
    }

    /// Record one processed morsel's completion; fold any
    /// now-unblocked ordered-sink sections (the sink consumes morsels
    /// strictly in seq order).
    fn complete(&mut self, idx: usize, done: u64) {
        self.phase_done = self.phase_done.max(done);
        let sink = self.phases[self.phase].sink;
        if let Some(sink) = sink {
            self.sink_done[idx] = Some(done);
            while let Some(d) = self.sink_done.get(self.sink_next).copied().flatten() {
                self.sink_free = self.sink_free.max(d) + sink[self.sink_next];
                self.sink_next += 1;
            }
        }
    }

    /// Cross drained phases (barriers) into the next phase; mark
    /// finished — serial suffix appended — when every phase is done.
    fn advance(&mut self) {
        while self.finished.is_none() {
            match self.phases.get(self.phase) {
                Some(p) if self.next_src < p.src.len() || self.queued > 0 => return,
                Some(_) => {
                    let end = self.phase_done.max(self.sink_free);
                    self.phase += 1;
                    self.next_src = 0;
                    self.avail = end;
                    self.src_free = end;
                    self.sink_free = end;
                    self.phase_done = end;
                    self.enter_phase();
                }
                None => self.finished = Some(self.phase_done.max(self.sink_free) + self.suffix_ns),
            }
        }
    }
}

/// The unified deterministic scheduling model behind every modeled
/// number this module exports: single-query makespans
/// ([`ScalingLedger::makespan_ns`]), build-only makespans, modeled
/// source-lock waits and the multi-query serving model all run this one
/// discrete simulation, so their relationships (single-query
/// equivalence, back-to-back chaining under an admission cap of one)
/// hold by construction.
///
/// The model mirrors the executor's scheduler dynamics exactly:
///
/// * Each query walks its phases behind barriers; within a phase the
///   source sections serialize in morsel order on the query's source
///   lock.
/// * A free worker first drains its **own local queue** (front pops,
///   no penalty), then **claims** a chunk from the query whose source
///   can start earliest — [`claim_size`]-guided runs for heap-backed
///   phases, single morsels for shared-operator phases — processing
///   the first morsel itself and queueing the rest locally, and only
///   then **steals** the back of the longest peer queue, paying the
///   [`STEAL_PENALTY_PERMILLE`] locality penalty on the stolen
///   morsel's worker section. One worker therefore never steals, which
///   keeps the one-worker makespan exactly equal to the serial total.
/// * Ordered-sink sections fold strictly in morsel order off a reorder
///   buffer; the serial suffix (an ordered scan's final sort) runs
///   after the last phase.
///
/// Returns `(makespan, total source-lock wait)`.
fn simulate(ledgers: &[ScalingLedger], workers: usize, max_queries: usize) -> (u64, u64) {
    let workers = workers.max(1);
    let max_queries = max_queries.max(1);
    let mut queries: Vec<SimQuery<'_>> = ledgers
        .iter()
        .map(|l| SimQuery {
            phases: l.phases(),
            prefix_ns: l.prefix_ns,
            suffix_ns: l.suffix_ns,
            phase: 0,
            next_src: 0,
            queued: 0,
            src_free: 0,
            sink_done: Vec::new(),
            sink_next: 0,
            sink_free: 0,
            phase_done: 0,
            avail: 0,
            admitted: false,
            finished: None,
        })
        .collect();
    let mut waiting: std::collections::VecDeque<usize> = (0..queries.len()).collect();
    let mut makespan = 0u64;
    let mut wait = 0u64;
    // Admit one query at `at`; if it finishes instantly (empty ledger),
    // its slot frees immediately — chain into the next waiting query.
    fn admit_chain(
        queries: &mut [SimQuery<'_>],
        waiting: &mut std::collections::VecDeque<usize>,
        mut at: u64,
        makespan: &mut u64,
    ) {
        while let Some(next) = waiting.pop_front() {
            queries[next].admit(at);
            match queries[next].finished {
                Some(end) => {
                    *makespan = (*makespan).max(end);
                    at = end;
                }
                None => break,
            }
        }
    }
    for _ in 0..max_queries.min(queries.len()) {
        admit_chain(&mut queries, &mut waiting, 0, &mut makespan);
    }
    let mut worker_free = vec![0u64; workers];
    let mut local: Vec<std::collections::VecDeque<SimItem>> =
        (0..workers).map(|_| std::collections::VecDeque::new()).collect();
    loop {
        // The earliest-free worker acts next (ties to the lowest
        // index).
        // invariant: `workers` is clamped to >= 1 above, so the range
        // is never empty.
        let w = (0..workers).min_by_key(|&i| worker_free[i]).expect("workers >= 1");
        // 1. Drain the local queue, exactly as `try_work` pops its own
        //    deque before touching the source.
        if let Some(item) = local[w].pop_front() {
            let proc = queries[item.query].phases[item.phase].proc[item.idx];
            let done = worker_free[w].max(item.ready) + proc;
            worker_free[w] = done;
            let q = &mut queries[item.query];
            q.queued -= 1;
            q.complete(item.idx, done);
            q.advance();
            if let Some(end) = q.finished {
                makespan = makespan.max(end);
                admit_chain(&mut queries, &mut waiting, end, &mut makespan);
            }
            continue;
        }
        // 2. Claim a chunk from the query whose source can start
        //    earliest (ties to the lowest query index).
        let claim = queries
            .iter()
            .enumerate()
            .filter(|(_, q)| q.admitted && q.finished.is_none())
            .filter(|(_, q)| q.phases.get(q.phase).is_some_and(|p| q.next_src < p.src.len()))
            .map(|(i, q)| (worker_free[w].max(q.avail).max(q.src_free), i))
            .min();
        if let Some((start, qi)) = claim {
            let (k, first, chunk_end, first_done, phase) = {
                let q = &queries[qi];
                let p = &q.phases[q.phase];
                let remaining = p.src.len() - q.next_src;
                let k = if p.chunked { claim_size(0, remaining, workers) } else { 1 };
                let k = k.min(remaining);
                let first = q.next_src;
                let chunk_end = start + p.src[first..first + k].iter().sum::<u64>();
                (k, first, chunk_end, chunk_end + p.proc[first], q.phase)
            };
            let q = &mut queries[qi];
            // Time this worker sat blocked on the source lock before
            // its claim could start.
            wait += q.src_free.saturating_sub(worker_free[w].max(q.avail));
            q.src_free = chunk_end;
            q.next_src = first + k;
            q.queued += k - 1;
            worker_free[w] = first_done;
            q.complete(first, first_done);
            for i in 1..k {
                local[w].push_back(SimItem { query: qi, phase, idx: first + i, ready: chunk_end });
            }
            q.advance();
            if let Some(end) = q.finished {
                makespan = makespan.max(end);
                admit_chain(&mut queries, &mut waiting, end, &mut makespan);
            }
            continue;
        }
        // 3. Steal the back of the longest peer queue (ties to the
        //    lowest worker index), paying the locality penalty.
        let stolen = (0..workers)
            .filter(|&v| v != w && !local[v].is_empty())
            .max_by_key(|&v| (local[v].len(), std::cmp::Reverse(v)))
            .and_then(|v| local[v].pop_back());
        if let Some(item) = stolen {
            let proc = queries[item.query].phases[item.phase].proc[item.idx];
            let proc = proc * (1000 + STEAL_PENALTY_PERMILLE) / 1000;
            let done = worker_free[w].max(item.ready) + proc;
            worker_free[w] = done;
            let q = &mut queries[item.query];
            q.queued -= 1;
            q.complete(item.idx, done);
            q.advance();
            if let Some(end) = q.finished {
                makespan = makespan.max(end);
                admit_chain(&mut queries, &mut waiting, end, &mut makespan);
            }
            continue;
        }
        // Nothing to pop, claim or steal anywhere: every admitted query
        // has drained (and eagerly advanced to finished).
        break;
    }
    (makespan, wait)
}

/// Deterministic makespan of several traced queries served concurrently
/// by one shared worker pool — the model behind the `serve`
/// experiment's cross-query scheduling gate. This is the same unified
/// simulation as [`ScalingLedger::makespan_ns`] (`simulate`), just
/// with several queries admitted: each keeps its own serialized source
/// chain, ordered sink, build barriers, chunked claims and stealable
/// local queues, while the worker pool is shared. At most `max_queries`
/// queries run at once; the rest wait FIFO and are admitted when a
/// running query completes. With one query (or `max_queries == 1`)
/// this reduces to chained single-query makespans by construction.
pub fn multi_query_makespan_ns(
    ledgers: &[ScalingLedger],
    workers: usize,
    max_queries: usize,
) -> u64 {
    simulate(ledgers, workers, max_queries).0
}

/// Project `schema` down to `cols`, in order.
fn project_schema_cols(schema: &Schema, cols: &[usize]) -> Result<Schema> {
    let kept = cols
        .iter()
        .map(|&c| {
            if c >= schema.len() {
                Err(Error::schema(format!("project column {c} out of range")))
            } else {
                Ok(schema.column(c).clone())
            }
        })
        .collect::<Result<Vec<_>>>()?;
    Schema::new(kept)
}

/// The output schema of a stage chain at plan time: projections prune,
/// probes splice in the probed build's payload schema from `prior` —
/// the (output schema, join type) of every build the chain may
/// reference, in build order. A probe of a build that is not available
/// yet (nested probes may only reference *earlier* builds) is a plan
/// error.
pub(crate) fn staged_schema(
    mut schema: Schema,
    stages: &[StageSpec],
    prior: &[(Schema, JoinType)],
) -> Result<Schema> {
    for stage in stages {
        match stage {
            StageSpec::Filter(_) => {}
            StageSpec::Project(cols) => schema = project_schema_cols(&schema, cols)?,
            StageSpec::Probe(i) => {
                let (build_schema, ty) = prior.get(*i).ok_or_else(|| {
                    Error::plan(format!("probe stage references build {i} before it is built"))
                })?;
                schema = match ty {
                    JoinType::Inner => schema.join(build_schema),
                    JoinType::LeftSemi => schema,
                };
            }
        }
    }
    Ok(schema)
}

/// Resolve a stage-spec chain into runtime stages against the built
/// probe tables, tracking the running schema so each probe stage knows
/// its gathered output typing. Build-side chains pass the tables of
/// earlier builds; the main pipeline passes all of them. Returns the
/// stages plus the chain's output schema.
pub(crate) fn resolve_stages(
    specs: &[StageSpec],
    mut schema: Schema,
    tables: &[Arc<ProbeTable>],
) -> Result<(Vec<Stage>, Schema)> {
    let mut resolved = Vec::with_capacity(specs.len());
    for spec in specs {
        match spec {
            StageSpec::Filter(p) => resolved.push(Stage::Filter(p.clone())),
            StageSpec::Project(cols) => {
                schema = project_schema_cols(&schema, cols)?;
                resolved.push(Stage::Project(cols.clone()));
            }
            StageSpec::Probe(i) => {
                let table = tables.get(*i).ok_or_else(|| {
                    Error::plan(format!("probe stage references build {i} before it is built"))
                })?;
                schema = match table.ty {
                    JoinType::Inner => schema.join(table.table.schema()),
                    JoinType::LeftSemi => schema,
                };
                resolved.push(Stage::Probe(Arc::clone(table), schema.clone()));
            }
        }
    }
    Ok((resolved, schema))
}

/// Ensure a morsel arriving at a build sink is columnar.
pub(crate) fn build_batch(morsel: Morsel, schema: &Schema) -> Result<ColumnBatch> {
    match morsel {
        Morsel::Cols(batch) => Ok(batch),
        Morsel::Rows(rows) => ColumnBatch::from_rows(schema, &rows),
    }
}

/// A [`BuildSpec`] with its source pulled out so the open cascade in
/// [`prepare`] can open sources in `open_at`/`open_order` order, not
/// build order.
struct BuildMeta {
    stages: Vec<StageSpec>,
    right_col: usize,
    left_col: usize,
    ty: JoinType,
    partitions: usize,
    mem_bytes: usize,
    open_at: usize,
    open_order: usize,
}

/// Drain one build pipeline into its probe table on the calling thread,
/// charging the clock exactly like the serial [`crate::HashJoin`] build
/// (one hash op per build-input row, build-input I/O in serial morsel
/// order). The source core arrives pre-opened — [`prepare`]'s cascade
/// ordered the opens. Nested probe stages resolve against the tables
/// of *earlier* builds and settle their deferred grace passes when the
/// build input is exhausted, exactly where the serial probe exhaustion
/// would. Multi-worker builds run as a scheduler phase instead
/// ([`crate::schedule`]); the merged table is byte-identical either way.
fn run_build(
    meta: &BuildMeta,
    core: SourceCore,
    decoder_spec: Option<(Schema, Predicate)>,
    tables: &[Arc<ProbeTable>],
    storage: &Storage,
    ledger: Option<&mut ScalingLedger>,
) -> Result<ProbeTable> {
    let partitions = meta.partitions.max(1);
    let (stages, schema) = resolve_stages(&meta.stages, core.schema(), tables)?;
    if meta.right_col >= schema.len() {
        return Err(Error::plan(format!(
            "hash-join build key column {} out of range",
            meta.right_col
        )));
    }
    let mut table = build_inline(
        core,
        decoder_spec,
        &stages,
        &schema,
        meta.right_col,
        partitions,
        storage,
        ledger,
    )?;
    // The build's probe input is exhausted: settle deferred grace-join
    // passes on every table its stages probed ([`finish_probe`] is
    // idempotent, so the final blanket pass stays a no-op for these).
    for stage in &stages {
        if let Stage::Probe(t, _) = stage {
            t.table.finish_probe(storage)?;
        }
    }
    table.apply_budget(storage, meta.mem_bytes)?;
    Ok(ProbeTable { table, left_col: meta.left_col, ty: meta.ty })
}

/// Single-worker build: claim, fold, merge — optionally recording the
/// per-morsel build ledger sections.
#[allow(clippy::too_many_arguments)]
fn build_inline(
    mut core: SourceCore,
    decoder_spec: Option<(Schema, Predicate)>,
    stages: &[Stage],
    schema: &Schema,
    right_col: usize,
    partitions: usize,
    storage: &Storage,
    mut ledger: Option<&mut ScalingLedger>,
) -> Result<JoinBuildTable> {
    let clock = storage.clock();
    let cpu_hash = storage.cpu().hash_op_ns;
    let mut decoder = decoder_spec.map(|(s, p)| HeapDecoder::new(s, p));
    let mut partial = JoinBuildPartial::new(schema, right_col, partitions);
    let mut seq = 0u64;
    loop {
        let before = clock.snapshot();
        let Some(item) = core.pull(storage)? else { break };
        let after_src = clock.snapshot();
        let morsel = process_item(item, &mut decoder, stages, storage)?;
        let batch = build_batch(morsel, schema)?;
        clock.charge_cpu(cpu_hash * batch.len() as u64);
        partial.fold(seq, batch)?;
        if let Some(l) = ledger.as_deref_mut() {
            let after_proc = clock.snapshot();
            l.build_src_ns.push(after_src.since(&before).total_ns());
            l.build_proc_ns.push(after_proc.since(&after_src).total_ns());
        }
        seq += 1;
    }
    core.close()?;
    Ok(partial.into_table(schema))
}

/// Everything a pipeline run needs after the open/build prefix.
struct Prepared {
    core: SourceCore,
    decoder_spec: Option<(Schema, Predicate)>,
    stages: Vec<Stage>,
    sink: SinkSpec,
    storage: Storage,
}

/// Open the probe source, replay the serial open cascade over the
/// build sources (`open_at`/`open_order` — tranche 0 before any build
/// drains, tranche `i + 1` right after build `i` completes), run the
/// builds inline in build order, and instantiate the runtime stages.
fn prepare(pipeline: ParallelPipeline, mut ledger: Option<&mut ScalingLedger>) -> Result<Prepared> {
    let ParallelPipeline { source, builds, stages, sink, storage, morsel_rows } = pipeline;
    let clock = storage.clock();
    let open_start = clock.snapshot();
    let schema = source.schema();
    let (core, decoder_spec) = open_source(source, morsel_rows)?;
    let (mut sources, metas): (Vec<Option<ParallelSource>>, Vec<BuildMeta>) = builds
        .into_iter()
        .map(|b| {
            let BuildSpec {
                source,
                stages,
                right_col,
                left_col,
                ty,
                partitions,
                mem_bytes,
                open_at,
                open_order,
            } = b;
            (
                Some(source),
                BuildMeta {
                    stages,
                    right_col,
                    left_col,
                    ty,
                    partitions,
                    mem_bytes,
                    open_at,
                    open_order,
                },
            )
        })
        .unzip();
    let mut order: Vec<usize> = (0..metas.len()).collect();
    order.sort_by_key(|&i| metas[i].open_order);
    let mut opened: Vec<Option<OpenedSource>> = (0..metas.len()).map(|_| None).collect();
    for &i in &order {
        if metas[i].open_at == 0 {
            if let Some(src) = sources[i].take() {
                opened[i] = Some(open_source(src, morsel_rows)?);
            }
        }
    }
    if let Some(l) = ledger.as_deref_mut() {
        l.prefix_ns = clock.snapshot().since(&open_start).total_ns();
        l.src_chunked = decoder_spec.is_some();
    }
    let mut tables: Vec<Arc<ProbeTable>> = Vec::with_capacity(metas.len());
    for (i, meta) in metas.iter().enumerate() {
        let (bcore, bdec) = opened[i].take().ok_or_else(|| {
            Error::plan(format!("build {i} source never opened (open_at {})", meta.open_at))
        })?;
        let chunked = bdec.is_some();
        let table = run_build(meta, bcore, bdec, &tables, &storage, ledger.as_deref_mut())?;
        tables.push(Arc::new(table));
        // Close this build's ledger segment: the next build (and the
        // probe phase) starts only after this one completed.
        if let Some(l) = ledger.as_deref_mut() {
            l.build_bounds.push(l.build_src_ns.len());
            l.build_chunked.push(chunked);
        }
        // Open the next tranche. Any clock charge these opens make
        // folds into the ledger prefix — build sources are scans whose
        // opens charge nothing, so the attribution stays exact in
        // practice.
        let before_opens = clock.snapshot();
        for &j in &order {
            if metas[j].open_at == i + 1 {
                if let Some(src) = sources[j].take() {
                    opened[j] = Some(open_source(src, morsel_rows)?);
                }
            }
        }
        if let Some(l) = ledger.as_deref_mut() {
            l.prefix_ns += clock.snapshot().since(&before_opens).total_ns();
        }
    }
    let (resolved, _) = resolve_stages(&stages, schema, &tables)?;
    Ok(Prepared { core, decoder_spec, stages: resolved, sink, storage })
}

/// Execute the pipeline on `workers` worker threads (1 runs inline on
/// the calling thread; more submit it as the sole query of an ephemeral
/// [`crate::Scheduler`]). Returns the result rows, byte-identical to
/// [`crate::collect_rows`] over the equivalent serial operator tree.
pub fn run_pipeline(pipeline: ParallelPipeline, workers: usize) -> Result<Vec<Row>> {
    if workers <= 1 {
        run_inline(pipeline, None)
    } else {
        let scheduler = crate::schedule::Scheduler::new(workers, 1);
        let handle = scheduler.submit(pipeline)?;
        Ok(handle.wait()?.into_rows())
    }
}

/// Single-worker execution that also records the per-morsel
/// [`ScalingLedger`] for the deterministic scaling model.
pub fn run_pipeline_traced(pipeline: ParallelPipeline) -> Result<(Vec<Row>, ScalingLedger)> {
    let mut ledger = ScalingLedger::default();
    let rows = run_inline(pipeline, Some(&mut ledger))?;
    Ok((rows, ledger))
}

fn run_inline(
    pipeline: ParallelPipeline,
    mut ledger: Option<&mut ScalingLedger>,
) -> Result<Vec<Row>> {
    let clock_storage = pipeline.storage.clone();
    let clock = clock_storage.clock();
    let Prepared { mut core, decoder_spec, stages, sink, storage } =
        prepare(pipeline, ledger.as_deref_mut())?;
    let mut decoder = decoder_spec.map(|(schema, pred)| HeapDecoder::new(schema, pred));
    let (mut agg, exact) = match &sink {
        SinkSpec::Collect | SinkSpec::Sort { .. } => (None, false),
        SinkSpec::Aggregate { group_cols, aggs, merge_exact } => {
            (Some(PartialAgg::new(group_cols, aggs)), *merge_exact)
        }
    };
    let mut rows = Vec::new();
    let mut seq = 0u64;
    loop {
        let before = clock.snapshot();
        let Some(item) = core.pull(&storage)? else { break };
        let after_src = clock.snapshot();
        let morsel = process_item(item, &mut decoder, &stages, &storage)?;
        let after_proc = clock.snapshot();
        match agg.as_mut() {
            Some(state) => state.update(&storage, seq, &morsel)?,
            None => rows.extend(morsel.into_rows()),
        }
        if let Some(l) = ledger.as_deref_mut() {
            let after_sink = clock.snapshot();
            let agg_ns = after_sink.since(&after_proc).total_ns();
            let proc_ns = after_proc.since(&after_src).total_ns();
            l.src_ns.push(after_src.since(&before).total_ns());
            // An exact-merge aggregate runs on the workers; an ordered
            // fold runs on the sink. Attribute its charge accordingly.
            if exact || agg.is_none() {
                l.proc_ns.push(proc_ns + agg_ns);
                l.sink_ns.push(0);
            } else {
                l.proc_ns.push(proc_ns);
                l.sink_ns.push(agg_ns);
            }
        }
        seq += 1;
    }
    if let Some(state) = agg {
        rows = state.finish();
    }
    // Probe input fully consumed: charge any deferred grace-join spill
    // passes, exactly where the serial probe exhaustion would.
    for stage in &stages {
        if let Stage::Probe(table, _) = stage {
            table.table.finish_probe(&storage)?;
        }
    }
    core.close()?;
    // The ordered-scan sink's final sort: the serial suffix after every
    // morsel drained (the serial `Sort` operator closes its child
    // before sorting too, so charges land in the identical order).
    if let SinkSpec::Sort { keys, mem_bytes } = &sink {
        let before = clock.snapshot();
        crate::sort::sort_rows_charged(&storage, &mut rows, keys, *mem_bytes)?;
        if let Some(l) = ledger {
            l.suffix_ns = clock.snapshot().since(&before).total_ns();
        }
    }
    Ok(rows)
}

// Compile-time Send audit: everything a worker thread touches.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Morsel>();
    assert_send::<Stage>();
    assert_send::<Storage>();
    assert_send::<BoxedOperator>();
    assert_send::<JoinBuildPartial>();
    assert_send::<JoinBuildTable>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{collect_rows, ValuesOp};
    use crate::{batch_size, Filter, FullTableScan, HashAggregate, HashJoin, Project};
    use smooth_storage::{CpuCosts, DeviceProfile, HeapLoader, StorageConfig};
    use smooth_types::{Column, DataType};

    fn table(rows: i64) -> Arc<HeapFile> {
        let schema = Schema::new(vec![
            Column::new("c0", DataType::Int64),
            Column::new("c1", DataType::Int64),
            Column::new("pad", DataType::Text),
        ])
        .unwrap();
        let mut loader = HeapLoader::new_mem("t", schema);
        for i in 0..rows {
            let c1 = (i * 2654435761 % 1000 + 1000) % 1000;
            loader
                .push(&Row::new(vec![Value::Int(i), Value::Int(c1), Value::str("x".repeat(30))]))
                .unwrap();
        }
        Arc::new(loader.finish().unwrap())
    }

    fn storage() -> Storage {
        Storage::new(StorageConfig {
            device: DeviceProfile::custom("t", 1, 10),
            cpu: CpuCosts::default(),
            pool_pages: 64,
        })
    }

    fn values_build(
        schema: &Schema,
        rows: &[Row],
        right_col: usize,
        left_col: usize,
        ty: JoinType,
    ) -> BuildSpec {
        BuildSpec {
            source: ParallelSource::Shared {
                op: Box::new(ValuesOp::new(schema.clone(), rows.to_vec())),
            },
            stages: Vec::new(),
            right_col,
            left_col,
            ty,
            partitions: crate::BUILD_PARTITIONS,
            mem_bytes: crate::spill::mem_budget_bytes(),
            open_at: 0,
            open_order: 0,
        }
    }

    fn heap_pipeline(
        heap: &Arc<HeapFile>,
        s: &Storage,
        stages: Vec<StageSpec>,
    ) -> ParallelPipeline {
        ParallelPipeline {
            source: ParallelSource::Heap {
                heap: Arc::clone(heap),
                predicate: Predicate::True,
                readahead: crate::scan::FULL_SCAN_READAHEAD,
            },
            builds: Vec::new(),
            stages,
            sink: SinkSpec::Collect,
            storage: s.clone(),
            morsel_rows: batch_size(),
        }
    }

    #[test]
    fn heap_source_matches_serial_scan_rows_and_clock() {
        let heap = table(3000);
        let pred = Predicate::int_half_open(1, 0, 300);
        let s_serial = storage();
        let mut op = Filter::new(
            Box::new(FullTableScan::new(Arc::clone(&heap), s_serial.clone(), Predicate::True)),
            pred.clone(),
        );
        let expected = collect_rows(&mut op).unwrap();
        for workers in [1usize, 2, 4, 8] {
            let s_par = storage();
            let pipeline = heap_pipeline(&heap, &s_par, vec![StageSpec::Filter(pred.clone())]);
            let got = run_pipeline(pipeline, workers).unwrap();
            assert_eq!(got, expected, "rows diverge at {workers} workers");
            assert_eq!(
                s_par.clock().snapshot(),
                s_serial.clock().snapshot(),
                "clock totals diverge at {workers} workers"
            );
            assert_eq!(s_par.io_snapshot(), s_serial.io_snapshot());
        }
    }

    #[test]
    fn shared_source_matches_serial_stack() {
        let heap = table(2500);
        let pred = Predicate::int_half_open(1, 100, 700);
        let s_serial = storage();
        let mut op = Project::new(
            Box::new(Filter::new(
                Box::new(FullTableScan::new(Arc::clone(&heap), s_serial.clone(), Predicate::True)),
                pred.clone(),
            )),
            vec![1, 0],
        )
        .unwrap();
        let expected = collect_rows(&mut op).unwrap();
        for workers in [1usize, 3, 8] {
            let s_par = storage();
            let pipeline = ParallelPipeline {
                source: ParallelSource::Shared {
                    op: Box::new(FullTableScan::new(
                        Arc::clone(&heap),
                        s_par.clone(),
                        Predicate::True,
                    )),
                },
                builds: Vec::new(),
                stages: vec![StageSpec::Filter(pred.clone()), StageSpec::Project(vec![1, 0])],
                sink: SinkSpec::Collect,
                storage: s_par.clone(),
                morsel_rows: batch_size(),
            };
            let got = run_pipeline(pipeline, workers).unwrap();
            assert_eq!(got, expected, "rows diverge at {workers} workers");
            assert_eq!(s_par.clock().snapshot(), s_serial.clock().snapshot());
        }
    }

    #[test]
    fn probe_stage_matches_serial_hash_join() {
        let heap = table(1200);
        let right_rows: Vec<Row> =
            (0..500).map(|i| Row::new(vec![Value::Int((i * 7) % 1000), Value::Int(i)])).collect();
        let right_schema = Schema::new(vec![
            Column::new("rk", DataType::Int64),
            Column::new("rv", DataType::Int64),
        ])
        .unwrap();
        for ty in [JoinType::Inner, JoinType::LeftSemi] {
            let s_serial = storage();
            let mut hj = HashJoin::new(
                Box::new(FullTableScan::new(Arc::clone(&heap), s_serial.clone(), Predicate::True)),
                Box::new(ValuesOp::new(right_schema.clone(), right_rows.clone())),
                1,
                0,
                ty,
                s_serial.clone(),
            );
            let expected = collect_rows(&mut hj).unwrap();
            for workers in [1usize, 2, 4] {
                let s_par = storage();
                let mut pipeline = heap_pipeline(&heap, &s_par, vec![StageSpec::Probe(0)]);
                pipeline.builds.push(values_build(&right_schema, &right_rows, 0, 1, ty));
                let got = run_pipeline(pipeline, workers).unwrap();
                assert_eq!(got, expected, "{ty:?} rows diverge at {workers} workers");
                assert_eq!(s_par.clock().snapshot(), s_serial.clock().snapshot(), "{ty:?}");
            }
        }
    }

    #[test]
    fn parallel_build_over_heap_source_matches_serial_hash_join() {
        // The build side is itself a pipeline: heap source + filter
        // stage, drained by the partitioned parallel build.
        let probe = table(800);
        let build = table(1500);
        let pred = Predicate::int_half_open(1, 0, 400);
        let s_serial = storage();
        let mut hj = HashJoin::new(
            Box::new(FullTableScan::new(Arc::clone(&probe), s_serial.clone(), Predicate::True)),
            Box::new(FullTableScan::new(Arc::clone(&build), s_serial.clone(), pred.clone())),
            1,
            1,
            JoinType::Inner,
            s_serial.clone(),
        );
        let expected = collect_rows(&mut hj).unwrap();
        assert!(!expected.is_empty());
        for workers in [1usize, 2, 4, 8] {
            let s_par = storage();
            let mut pipeline = heap_pipeline(&probe, &s_par, vec![StageSpec::Probe(0)]);
            pipeline.builds.push(BuildSpec {
                source: ParallelSource::Heap {
                    heap: Arc::clone(&build),
                    predicate: pred.clone(),
                    readahead: crate::scan::FULL_SCAN_READAHEAD,
                },
                stages: Vec::new(),
                right_col: 1,
                left_col: 1,
                ty: JoinType::Inner,
                partitions: crate::BUILD_PARTITIONS,
                mem_bytes: crate::spill::mem_budget_bytes(),
                open_at: 0,
                open_order: 0,
            });
            let got = run_pipeline(pipeline, workers).unwrap();
            assert_eq!(got, expected, "rows diverge at {workers} workers");
            assert_eq!(s_par.clock().snapshot(), s_serial.clock().snapshot());
            assert_eq!(s_par.io_snapshot(), s_serial.io_snapshot());
        }
    }

    #[test]
    fn exact_partial_aggregate_matches_serial() {
        let heap = table(2000);
        let group_cols = vec![1usize];
        let aggs = vec![AggFunc::CountStar, AggFunc::Sum(0), AggFunc::Min(0), AggFunc::Max(0)];
        let s_serial = storage();
        let mut agg = HashAggregate::new(
            Box::new(FullTableScan::new(Arc::clone(&heap), s_serial.clone(), Predicate::True)),
            group_cols.clone(),
            aggs.clone(),
            s_serial.clone(),
        )
        .unwrap();
        let expected = collect_rows(&mut agg).unwrap();
        for workers in [1usize, 2, 4, 8] {
            let s_par = storage();
            let mut pipeline = heap_pipeline(&heap, &s_par, Vec::new());
            pipeline.sink = SinkSpec::Aggregate {
                group_cols: group_cols.clone(),
                aggs: aggs.clone(),
                merge_exact: true,
            };
            let got = run_pipeline(pipeline, workers).unwrap();
            assert_eq!(got, expected, "groups diverge at {workers} workers");
            assert_eq!(s_par.clock().snapshot(), s_serial.clock().snapshot());
        }
    }

    #[test]
    fn ordered_float_aggregate_matches_serial_fold() {
        // Float sums must fold in morsel order on the sink: assert the
        // parallel result is byte-identical to the serial driver.
        let schema = Schema::new(vec![
            Column::new("g", DataType::Int64),
            Column::new("v", DataType::Float64),
        ])
        .unwrap();
        let mut loader = HeapLoader::new_mem("f", schema.clone());
        for i in 0..1500i64 {
            let v = (i as f64) * 0.3 + 0.1234567 * ((i % 7) as f64);
            loader.push(&Row::new(vec![Value::Int(i % 13), Value::Float(v)])).unwrap();
        }
        let heap = Arc::new(loader.finish().unwrap());
        let group_cols = vec![0usize];
        let aggs = vec![AggFunc::Sum(1), AggFunc::Avg(1), AggFunc::CountStar];
        let s_serial = storage();
        let mut agg = HashAggregate::new(
            Box::new(FullTableScan::new(Arc::clone(&heap), s_serial.clone(), Predicate::True)),
            group_cols.clone(),
            aggs.clone(),
            s_serial.clone(),
        )
        .unwrap();
        let expected = collect_rows(&mut agg).unwrap();
        for workers in [1usize, 2, 4] {
            let s_par = storage();
            let mut pipeline = heap_pipeline(&heap, &s_par, Vec::new());
            pipeline.sink = SinkSpec::Aggregate {
                group_cols: group_cols.clone(),
                aggs: aggs.clone(),
                merge_exact: false,
            };
            let got = run_pipeline(pipeline, workers).unwrap();
            assert_eq!(got, expected, "float fold diverges at {workers} workers");
            assert_eq!(s_par.clock().snapshot(), s_serial.clock().snapshot());
        }
    }

    #[test]
    fn errors_propagate_from_workers() {
        let heap = table(500);
        let s = storage();
        // Probing a column past the schema errors (the serial columnar
        // HashJoin reports the same).
        let pipeline = heap_pipeline(
            &heap,
            &s,
            vec![StageSpec::Filter(Predicate::StrEq { col: 1, value: "x".into() })],
        );
        assert!(run_pipeline(pipeline, 4).is_err());
    }

    #[test]
    fn build_side_errors_propagate() {
        let heap = table(400);
        let right_schema = Schema::new(vec![Column::new("rk", DataType::Int64)]).unwrap();
        for workers in [1usize, 4] {
            let s = storage();
            let mut pipeline = heap_pipeline(&heap, &s, vec![StageSpec::Probe(0)]);
            pipeline.builds.push(BuildSpec {
                source: ParallelSource::Shared {
                    op: Box::new(ValuesOp::new(
                        right_schema.clone(),
                        vec![Row::new(vec![Value::Int(1)])],
                    )),
                },
                stages: Vec::new(),
                right_col: 9, // out of range: must surface as a plan error
                left_col: 1,
                ty: JoinType::Inner,
                partitions: crate::BUILD_PARTITIONS,
                mem_bytes: crate::spill::mem_budget_bytes(),
                open_at: 0,
                open_order: 0,
            });
            assert!(run_pipeline(pipeline, workers).is_err(), "{workers} workers");
        }
    }

    #[test]
    fn ledger_model_is_consistent() {
        let heap = table(3000);
        let s = storage();
        let pipeline = heap_pipeline(&heap, &s, vec![StageSpec::Filter(Predicate::int_lt(1, 500))]);
        let (rows, ledger) = run_pipeline_traced(pipeline).unwrap();
        assert!(!rows.is_empty());
        assert!(!ledger.src_ns.is_empty());
        // One worker's makespan is exactly the serial total.
        assert_eq!(ledger.makespan_ns(1), ledger.total_ns());
        // More workers never slow the model down, and speedup is bounded
        // by the serialized source.
        let m2 = ledger.makespan_ns(2);
        let m4 = ledger.makespan_ns(4);
        assert!(m2 <= ledger.makespan_ns(1));
        assert!(m4 <= m2);
        let src_total: u64 = ledger.src_ns.iter().sum();
        assert!(m4 >= src_total, "source sections serialize");
        assert!(ledger.speedup(4) >= 1.0);
        // Modeled source-lock wait: zero at one worker (a lone worker
        // never races itself), monotone data: more workers can only add
        // contention on the serialized source.
        assert_eq!(ledger.modeled_src_wait_ns(1), 0);
        assert!(ledger.modeled_src_wait_ns(8) >= ledger.modeled_src_wait_ns(2));
    }

    #[test]
    fn multi_query_model_reduces_to_single_query_chains() {
        let heap = table(3000);
        let s = storage();
        let pipeline = heap_pipeline(&heap, &s, vec![StageSpec::Filter(Predicate::int_lt(1, 500))]);
        let (_, ledger) = run_pipeline_traced(pipeline).unwrap();
        for workers in [1usize, 2, 4] {
            // One query: the multi-query schedule IS the single-query one.
            assert_eq!(
                multi_query_makespan_ns(std::slice::from_ref(&ledger), workers, 4),
                ledger.makespan_ns(workers),
                "single-query equivalence at {workers} workers"
            );
            // Admission cap 1: queries chain back to back.
            assert_eq!(
                multi_query_makespan_ns(&[ledger.clone(), ledger.clone()], workers, 1),
                2 * ledger.makespan_ns(workers),
                "one-at-a-time chaining at {workers} workers"
            );
        }
        // Serving two copies concurrently on 4 workers beats (or ties)
        // running them one at a time — cross-query scheduling fills the
        // source-lock stalls with the other query's work.
        let solo_chain = 2 * ledger.makespan_ns(4);
        let served = multi_query_makespan_ns(&[ledger.clone(), ledger.clone()], 4, 2);
        assert!(served <= solo_chain, "served {served} > chained {solo_chain}");
        // And never beats the total-work lower bound on the serialized
        // per-query source chains.
        let src_total: u64 = ledger.src_ns.iter().sum();
        assert!(served >= src_total + ledger.prefix_ns);
    }

    #[test]
    fn traced_build_sections_feed_the_model() {
        let probe = table(1000);
        let build = table(2000);
        let s = storage();
        let mut pipeline = heap_pipeline(&probe, &s, vec![StageSpec::Probe(0)]);
        pipeline.builds.push(BuildSpec {
            source: ParallelSource::Heap {
                heap: Arc::clone(&build),
                predicate: Predicate::True,
                readahead: crate::scan::FULL_SCAN_READAHEAD,
            },
            stages: Vec::new(),
            right_col: 1,
            left_col: 1,
            ty: JoinType::Inner,
            partitions: crate::BUILD_PARTITIONS,
            mem_bytes: crate::spill::mem_budget_bytes(),
            open_at: 0,
            open_order: 0,
        });
        let (rows, ledger) = run_pipeline_traced(pipeline).unwrap();
        assert!(!rows.is_empty());
        assert!(!ledger.build_src_ns.is_empty(), "build morsels recorded");
        assert_eq!(ledger.build_src_ns.len(), ledger.build_proc_ns.len());
        assert_eq!(ledger.build_bounds, vec![ledger.build_src_ns.len()]);
        // The one-worker makespan still reproduces the serial total with
        // the build phase folded in.
        assert_eq!(ledger.makespan_ns(1), ledger.total_ns());
        assert!(ledger.build_speedup(1) == 1.0);
        assert!(ledger.build_speedup(4) >= 1.0);
        assert!(ledger.makespan_ns(4) <= ledger.makespan_ns(2));
    }

    #[test]
    fn multi_build_ledger_barriers_between_builds() {
        // Two chained probes: each build runs to completion before the
        // next starts, and the model must barrier the same way.
        let probe = table(800);
        let build_a = table(1200);
        let build_b = table(1200);
        let s = storage();
        let mut pipeline =
            heap_pipeline(&probe, &s, vec![StageSpec::Probe(0), StageSpec::Probe(1)]);
        for (bi, heap) in [&build_a, &build_b].into_iter().enumerate() {
            pipeline.builds.push(BuildSpec {
                source: ParallelSource::Heap {
                    heap: Arc::clone(heap),
                    predicate: Predicate::int_half_open(1, 0, 40),
                    readahead: crate::scan::FULL_SCAN_READAHEAD,
                },
                stages: Vec::new(),
                right_col: 1,
                left_col: 1,
                ty: JoinType::LeftSemi,
                partitions: crate::BUILD_PARTITIONS,
                mem_bytes: crate::spill::mem_budget_bytes(),
                // Left-deep serial cascade: build 1's source opens only
                // after build 0 drains.
                open_at: bi,
                open_order: bi,
            });
        }
        let (rows, ledger) = run_pipeline_traced(pipeline).unwrap();
        assert!(!rows.is_empty());
        assert_eq!(ledger.build_bounds.len(), 2, "one segment per build");
        assert_eq!(*ledger.build_bounds.last().unwrap(), ledger.build_src_ns.len());
        assert_eq!(ledger.makespan_ns(1), ledger.total_ns());
        // The barriered schedule can never beat the (incorrect)
        // barrier-free packing of both builds as one phase.
        let one_phase =
            ScalingLedger { build_bounds: vec![], ..ledger.clone() }.build_makespan_ns(4);
        assert!(ledger.build_makespan_ns(4) >= one_phase);
        // The parallel runs still match serial with chained builds.
        let serial_rows = rows.clone();
        for workers in [2usize, 4] {
            let s_par = storage();
            let mut pipeline =
                heap_pipeline(&probe, &s_par, vec![StageSpec::Probe(0), StageSpec::Probe(1)]);
            for (bi, heap) in [&build_a, &build_b].into_iter().enumerate() {
                pipeline.builds.push(BuildSpec {
                    source: ParallelSource::Heap {
                        heap: Arc::clone(heap),
                        predicate: Predicate::int_half_open(1, 0, 40),
                        readahead: crate::scan::FULL_SCAN_READAHEAD,
                    },
                    stages: Vec::new(),
                    right_col: 1,
                    left_col: 1,
                    ty: JoinType::LeftSemi,
                    partitions: crate::BUILD_PARTITIONS,
                    mem_bytes: crate::spill::mem_budget_bytes(),
                    // Left-deep serial cascade: build 1's source opens
                    // only after build 0 drains.
                    open_at: bi,
                    open_order: bi,
                });
            }
            let got = run_pipeline(pipeline, workers).unwrap();
            assert_eq!(got, serial_rows, "chained builds diverge at {workers} workers");
        }
    }

    #[test]
    fn guided_claims_shrink_toward_single_morsels() {
        // Guided self-scheduling (no fixed override): claims start at
        // remaining/(2·workers), clamped to [1, 64], and a simulated
        // drain produces a non-increasing sequence ending in 1s.
        assert_eq!(claim_size(0, 1000, 4), 64, "upper clamp");
        assert_eq!(claim_size(0, 100, 4), 12);
        assert_eq!(claim_size(0, 7, 4), 1, "lower clamp at the tail");
        assert_eq!(claim_size(0, 0, 4), 1, "empty source still claims 1");
        let mut remaining = 500usize;
        let mut sizes = Vec::new();
        while remaining > 0 {
            let c = claim_size(0, remaining, 4).min(remaining);
            sizes.push(c);
            remaining -= c;
        }
        assert!(sizes.windows(2).all(|w| w[0] >= w[1]), "claims grow: {sizes:?}");
        assert_eq!(*sizes.last().unwrap(), 1, "tail claims are single morsels");
        assert_eq!(sizes.iter().sum::<usize>(), 500);
    }

    #[test]
    fn fixed_override_applies_only_to_hinted_sources() {
        // SMOOTH_CLAIM_MORSELS (fixed > 0) wins over guidance for heap
        // sources (which hint their remaining runs)...
        assert_eq!(claim_size(8, 1000, 4), 8);
        assert_eq!(source_claim(8, Some(1000), 4), 8);
        assert_eq!(source_claim(0, Some(1000), 4), 64);
        // ...but a hint-less serial source (Smooth/Switch shared
        // operator) always claims exactly one morsel: queued chunks
        // behind a serial source can never fan out, so a fixed
        // override must not inflate its lock hold.
        assert_eq!(source_claim(0, None, 4), 1);
        assert_eq!(source_claim(64, None, 4), 1, "fixed override must not chunk serial sources");
        assert_eq!(source_claim(64, None, 1), 1);
    }

    #[test]
    fn shared_sources_hint_nothing_and_heap_sources_hint_runs() {
        let heap = table(200);
        let pages = heap.page_count() as usize;
        let readahead = 4u32;
        let (core, _) = open_source(
            ParallelSource::Heap { heap, predicate: Predicate::True, readahead },
            batch_size(),
        )
        .unwrap();
        assert_eq!(core.remaining_hint(), Some(pages.div_ceil(readahead as usize)));
        let schema = Schema::new(vec![Column::new("x", DataType::Int64)]).unwrap();
        let op: BoxedOperator = Box::new(ValuesOp::new(schema, vec![Row::new(vec![0i64.into()])]));
        let (core, _) = open_source(ParallelSource::Shared { op }, batch_size()).unwrap();
        assert_eq!(core.remaining_hint(), None, "shared operators cannot size lock holds");
    }
}
