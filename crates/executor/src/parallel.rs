//! Morsel-driven parallel pipeline execution (HyPer-style).
//!
//! A [`ParallelPipeline`] runs one query pipeline across a fixed worker
//! pool: workers pull columnar morsels from a shared source, push each
//! morsel through a per-worker chain of [`StageSpec`]s (filter, projection,
//! hash-join probe) with thread-local state, fold it into a per-worker
//! partial aggregate where that is exact, and hand everything else to an
//! *ordered* sink that merges morsels back into source order. The
//! result is **deterministic and byte-identical** to the single-threaded
//! columnar driver ([`crate::collect_rows`]), and the total virtual
//! CPU/IO clock charges are **exactly equal** to the single-threaded
//! run. Two structural decisions make that possible:
//!
//! * **Source sections are serialized in morsel order.** The disk model
//!   ([`smooth_storage::Storage`]) classifies a transfer as sequential
//!   or random by whether it physically continues the previous one, and
//!   buffer-pool residency depends on access order — so all charged I/O
//!   happens inside the source lock, in exactly the order the
//!   single-threaded driver would issue it. For a heap scan the lock
//!   covers only the page-run fetch (readahead-sized, cheap — a pool
//!   probe plus a memcpy per page); the expensive part, probing encoded
//!   tuples and decoding qualifiers into column vectors, runs on the
//!   claiming worker *outside* the lock with a thread-local
//!   [`ScanFilter`]. For any other operator (Smooth Scan, Switch Scan,
//!   index/sort scans, sorts) the whole operator *is* the serial
//!   section: adaptive morph decisions stay centralized in one operator
//!   instance, untouched by parallelism, exactly as the single-threaded
//!   driver runs them.
//! * **Worker-side charges are per-tuple, never per-batch-boundary.**
//!   Every stage charges the shared virtual clock (lock-free atomics —
//!   the contention-light accounting core) the same per-row amounts the
//!   serial operators charge, so totals are independent of how rows are
//!   grouped into morsels and of which worker processed them.
//!
//! Pipeline breakers merge deterministically. Hash-join builds are their
//! own parallel phase, run before the probe phase starts: each
//! [`BuildSpec`] carries a morsel source (and filter/projection stages)
//! of its own, workers claim build morsels under the source lock (so
//! build-input I/O happens in the exact serial order) and fold them into
//! per-worker **hash-partitioned** partial builds
//! ([`crate::JoinBuildPartial`]: a payload [`ColumnBatch`] plus
//! position-keyed match lists — no `Vec<Row>` anywhere), which then merge
//! by global build position ([`crate::JoinBuildTable::merge_partition`]) —
//! mirroring the aggregate sink's first-seen-position rule, so the probe
//! table is byte-identical to the serial [`crate::HashJoin`] build no
//! matter which worker ingested which morsel. Grouped aggregates use
//! per-worker partial maps merged by global first-seen position when the
//! merge is exact ([`AggFunc::merge_exact`]), and otherwise fold on the
//! ordered sink in morsel order so float sums stay byte-identical; plain
//! row output is concatenated in morsel order.
//!
//! Multi-worker execution lives in [`crate::schedule`]: since the
//! engine-global refactor the worker pool belongs to a persistent
//! [`crate::Scheduler`] serving *queries* (each an independent phase
//! state machine with its own source lock and sink), not to a single
//! pipeline run. [`run_pipeline`] at `workers > 1` submits the pipeline
//! as the sole query of an ephemeral scheduler; this module keeps the
//! specs, the per-morsel machinery (sources, stages, partial sinks) and
//! the single-worker inline driver that the traced ledger runs on.
//!
//! [`run_pipeline_traced`] additionally records a per-morsel
//! virtual-clock ledger ([`ScalingLedger`]) — now with separate
//! build-phase sections — from which a deterministic scaling model —
//! greedy list-scheduling of the measured source / worker / sink
//! sections — predicts the parallel makespan at any worker count. The
//! perf-smoke `parallel` and `join` experiments gate on that model
//! because, unlike wall clock on a shared CI runner (or this repo's
//! build hosts), it is bit-stable across machines.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::Arc;

use smooth_storage::{HeapFile, PageBuf, PageView, Storage};
use smooth_types::{ColumnBatch, Error, PageId, Result, Row, Schema, Value};

use crate::agg::Acc;
use crate::expr::{Predicate, ScanFilter};
use crate::join::{JoinBuildPartial, JoinBuildTable};
use crate::operator::BoxedOperator;
use crate::scan::fill_page_columns;
use crate::{AggFunc, JoinType};

/// A unit of work flowing between stages: columnar end to end in the
/// default pipeline (the probe stage emits gathered columnar batches);
/// the row variant remains for generality.
#[derive(Debug)]
pub enum Morsel {
    /// Columnar morsel (possibly carrying a selection vector).
    Cols(ColumnBatch),
    /// Materialized rows.
    Rows(Vec<Row>),
}

impl Morsel {
    /// Live rows in the morsel.
    pub fn len(&self) -> usize {
        match self {
            Morsel::Cols(b) => b.len(),
            Morsel::Rows(r) => r.len(),
        }
    }

    /// `true` when no rows are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialize as rows (honoring any selection vector).
    pub fn into_rows(self) -> Vec<Row> {
        match self {
            Morsel::Cols(b) => b.into_rows(),
            Morsel::Rows(r) => r,
        }
    }
}

/// Where morsels come from.
pub enum ParallelSource {
    /// A partitioned heap scan: workers claim readahead-sized page runs
    /// (I/O under the source lock, in page order), then probe + decode
    /// on their own thread via a thread-local [`ScanFilter`]. This is
    /// the fully parallel source — the CPU-heavy decode fans out.
    Heap {
        /// The heap to scan.
        heap: Arc<HeapFile>,
        /// Scan predicate (pushed into the per-worker [`ScanFilter`]).
        predicate: Predicate,
        /// Pages fetched per morsel (use
        /// [`crate::scan::FULL_SCAN_READAHEAD`] to match the serial
        /// scan's request pattern).
        readahead: u32,
    },
    /// Any operator as a serial morsel source: workers take turns
    /// pulling `next_columns(morsel_rows)` under the source lock. The
    /// operator runs exactly as it would single-threaded — this is how
    /// Smooth/Switch Scan morph accounting stays centralized — while
    /// the stages above it still fan out.
    Shared {
        /// The source operator (opened by the driver).
        op: BoxedOperator,
    },
}

impl ParallelSource {
    /// The schema of the morsels this source emits.
    pub(crate) fn schema(&self) -> Schema {
        match self {
            ParallelSource::Heap { heap, .. } => heap.schema().clone(),
            ParallelSource::Shared { op } => op.schema().clone(),
        }
    }
}

/// One hash-join build input: a pipeline of its own (morsel source plus
/// filter/projection stages), drained **before** the probe phase starts.
/// Build-input I/O serializes under the build source's lock in morsel
/// order — exactly the order the serial [`crate::HashJoin`] build would
/// issue it — while the per-row partition + map-insert CPU fans out
/// across the worker pool into per-worker [`JoinBuildPartial`]s.
pub struct BuildSpec {
    /// The build-side morsel source (right input).
    pub source: ParallelSource,
    /// Per-worker build-side stages ([`StageSpec::Filter`] /
    /// [`StageSpec::Project`] only — a nested probe inside a build is a
    /// plan error; subtrees that need one run as a `Shared` source).
    pub stages: Vec<StageSpec>,
    /// Key ordinal in the build rows.
    pub right_col: usize,
    /// Key ordinal in the probe rows.
    pub left_col: usize,
    /// Join semantics.
    pub ty: JoinType,
    /// Hash partitions of the build table (probe results are independent
    /// of it; [`crate::BUILD_PARTITIONS`] is the default).
    pub partitions: usize,
    /// Operator memory budget in bytes for the build table (0 =
    /// unlimited); enforced after the partial merge, so every worker
    /// count charges identical spill I/O
    /// ([`crate::JoinBuildTable::apply_budget`]).
    pub mem_bytes: usize,
}

/// A per-worker morsel transform, declared against the build list.
#[derive(Clone)]
pub enum StageSpec {
    /// Keep rows satisfying the predicate (selection refinement on
    /// columnar morsels — no row moves).
    Filter(Predicate),
    /// Keep the listed columns, in order (column pruning).
    Project(Vec<usize>),
    /// Probe the `i`-th build table; emits gathered columnar batches.
    Probe(usize),
}

/// What happens to the ordered morsel stream at the pipeline end.
pub enum SinkSpec {
    /// Concatenate rows in morsel order.
    Collect,
    /// Grouped / scalar aggregation.
    Aggregate {
        /// Group-by ordinals (empty = scalar).
        group_cols: Vec<usize>,
        /// Aggregates per group.
        aggs: Vec<AggFunc>,
        /// When every aggregate merges exactly
        /// ([`AggFunc::merge_exact`]), workers hold partial maps merged
        /// by first-seen position; otherwise the sink folds morsels in
        /// order on the coordinator, keeping float sums byte-identical
        /// to the serial fold.
        merge_exact: bool,
    },
}

/// A decomposed pipeline ready for the worker pool.
pub struct ParallelPipeline {
    /// Morsel source.
    pub source: ParallelSource,
    /// Hash-join builds, bottom-up (the order the serial open cascade
    /// would drain them). Each is a parallel phase of its own.
    pub builds: Vec<BuildSpec>,
    /// Per-worker stages, source side first.
    pub stages: Vec<StageSpec>,
    /// Terminal merge.
    pub sink: SinkSpec,
    /// Shared storage handle (clock + pool the whole pipeline charges).
    pub storage: Storage,
    /// Rows per morsel for [`ParallelSource::Shared`] pulls (the serial
    /// driver's `batch_size()` to match it exactly).
    pub morsel_rows: usize,
}

/// A shared, read-only hash-join probe table: the merged columnar build
/// plus the probe-side key ordinal and join semantics.
pub(crate) struct ProbeTable {
    pub(crate) table: JoinBuildTable,
    pub(crate) left_col: usize,
    pub(crate) ty: JoinType,
}

/// A runtime stage (build references resolved; the probe stage carries
/// its output schema so gathered batches type correctly).
#[derive(Clone)]
pub(crate) enum Stage {
    Filter(Predicate),
    Project(Vec<usize>),
    Probe(Arc<ProbeTable>, Schema),
}

impl Stage {
    fn apply(&self, storage: &Storage, morsel: Morsel) -> Result<Morsel> {
        match self {
            Stage::Filter(pred) => match morsel {
                Morsel::Cols(mut batch) => {
                    let selection = pred.filter_batch(&batch)?;
                    batch.set_selection(selection);
                    Ok(Morsel::Cols(batch))
                }
                Morsel::Rows(rows) => {
                    let mut kept = Vec::with_capacity(rows.len());
                    for row in rows {
                        if pred.eval(&row)? {
                            kept.push(row);
                        }
                    }
                    Ok(Morsel::Rows(kept))
                }
            },
            Stage::Project(cols) => match morsel {
                Morsel::Cols(batch) => Ok(Morsel::Cols(batch.project(cols)?)),
                Morsel::Rows(rows) => Ok(Morsel::Rows(
                    rows.into_iter()
                        .map(|row| Row::new(cols.iter().map(|&c| row.get(c).clone()).collect()))
                        .collect(),
                )),
            },
            Stage::Probe(table, out_schema) => probe_morsel(table, out_schema, storage, morsel),
        }
    }
}

/// Probe one morsel against a build table via the shared probe loop
/// ([`JoinBuildTable::probe_columns`] — the exact code the serial
/// [`crate::HashJoin`] runs, so the charge model lives in one place):
/// output gathers probe columns and matched payload columns straight
/// into a fresh columnar batch — no `Row` materializes.
fn probe_morsel(
    table: &ProbeTable,
    out_schema: &Schema,
    storage: &Storage,
    morsel: Morsel,
) -> Result<Morsel> {
    let cpu = *storage.cpu();
    let clock = storage.clock();
    match morsel {
        Morsel::Cols(batch) => {
            let mut out = ColumnBatch::for_schema(out_schema);
            table.table.probe_columns(storage, &batch, table.left_col, table.ty, &mut out)?;
            Ok(Morsel::Cols(out))
        }
        Morsel::Rows(rows) => {
            let mut out = Vec::new();
            for left_row in rows {
                clock.charge_cpu(cpu.hash_op_ns);
                let key = left_row.get(table.left_col);
                if key.is_null() {
                    continue;
                }
                let Some(matches) = table.table.matches(key) else { continue };
                match table.ty {
                    JoinType::Inner => {
                        clock.charge_cpu(cpu.emit_tuple_ns * matches.len() as u64);
                        out.extend(
                            matches.iter().map(|&m| left_row.concat(&table.table.payload_row(m))),
                        );
                    }
                    JoinType::LeftSemi => {
                        clock.charge_cpu(cpu.emit_tuple_ns);
                        out.push(left_row);
                    }
                }
            }
            Ok(Morsel::Rows(out))
        }
    }
}

/// Global first-seen position of a group: (morsel seq, index within the
/// morsel). Minimizing over workers reproduces the serial first-seen
/// group order exactly.
type FirstPos = (u64, u64);

/// A (partial) grouped-aggregation state — per worker when the merge is
/// exact, on the ordered sink otherwise. Accumulator semantics and
/// clock charges mirror [`crate::HashAggregate`] exactly.
pub(crate) struct PartialAgg {
    group_cols: Vec<usize>,
    aggs: Vec<AggFunc>,
    groups: HashMap<Vec<Value>, (FirstPos, Vec<Acc>)>,
}

impl PartialAgg {
    pub(crate) fn new(group_cols: &[usize], aggs: &[AggFunc]) -> Self {
        PartialAgg { group_cols: group_cols.to_vec(), aggs: aggs.to_vec(), groups: HashMap::new() }
    }

    /// Fold one morsel in, charging `(hash + update·|aggs|)` per live
    /// row — the serial operator's per-batch bulk charge, which is
    /// per-row underneath and therefore boundary-independent.
    pub(crate) fn update(&mut self, storage: &Storage, seq: u64, morsel: &Morsel) -> Result<()> {
        let cpu = *storage.cpu();
        storage.clock().charge_cpu(
            (cpu.hash_op_ns + cpu.agg_update_ns * self.aggs.len() as u64) * morsel.len() as u64,
        );
        // A partial is no longer fed by one worker in monotone seq
        // order: the scheduler's slot pool hands a partial to whichever
        // worker frees up next, so one slot can fold seq 3 before
        // seq 2. Minimizing the first-seen position on *every* row (not
        // just on insert) keeps the recorded position equal to the
        // global first occurrence regardless of fold order.
        let PartialAgg { group_cols, aggs, groups } = self;
        match morsel {
            Morsel::Cols(batch) => {
                for (idx, phys) in batch.live_rows().enumerate() {
                    let key: Vec<Value> =
                        group_cols.iter().map(|&c| batch.column(c).value(phys)).collect();
                    let (pos, accs) = groups.entry(key).or_insert_with(|| {
                        ((u64::MAX, u64::MAX), aggs.iter().map(Acc::new).collect())
                    });
                    *pos = (*pos).min((seq, idx as u64));
                    for (acc, f) in accs.iter_mut().zip(aggs.iter()) {
                        acc.update_columns(f, batch, phys)?;
                    }
                }
            }
            Morsel::Rows(rows) => {
                for (idx, row) in rows.iter().enumerate() {
                    let key: Vec<Value> = group_cols.iter().map(|&c| row.get(c).clone()).collect();
                    let (pos, accs) = groups.entry(key).or_insert_with(|| {
                        ((u64::MAX, u64::MAX), aggs.iter().map(Acc::new).collect())
                    });
                    *pos = (*pos).min((seq, idx as u64));
                    for (acc, f) in accs.iter_mut().zip(aggs.iter()) {
                        acc.update_values(f, row.values())?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Combine another worker's partial in (order-independent: the
    /// caller guarantees every aggregate merges exactly).
    pub(crate) fn merge(&mut self, other: PartialAgg) {
        for (key, (pos, accs)) in other.groups {
            match self.groups.entry(key) {
                Entry::Vacant(slot) => {
                    slot.insert((pos, accs));
                }
                Entry::Occupied(mut slot) => {
                    let (cur_pos, cur_accs) = slot.get_mut();
                    *cur_pos = (*cur_pos).min(pos);
                    for (a, b) in cur_accs.iter_mut().zip(accs) {
                        a.merge(b);
                    }
                }
            }
        }
    }

    /// Emit the groups in global first-seen order (a scalar aggregate
    /// over empty input still yields one row, as in the serial
    /// operator).
    pub(crate) fn finish(mut self) -> Vec<Row> {
        if self.groups.is_empty() && self.group_cols.is_empty() {
            self.groups.insert(Vec::new(), ((0, 0), self.aggs.iter().map(Acc::new).collect()));
        }
        let mut entries: Vec<_> = self.groups.into_iter().collect();
        entries.sort_by_key(|(_, (pos, _)): &(Vec<Value>, (FirstPos, Vec<Acc>))| *pos);
        entries
            .into_iter()
            .map(|(key, (_, accs))| {
                let mut values = key;
                values.extend(accs.into_iter().map(Acc::finish));
                Row::new(values)
            })
            .collect()
    }
}

/// What the source hands a worker under the lock.
pub(crate) enum SourceItem {
    /// A page run still to be probed + decoded (worker-side CPU).
    Pages(Vec<(PageId, PageBuf)>),
    /// A ready columnar morsel pulled from a shared operator.
    Batch(ColumnBatch),
}

/// The serial section: pulled in morsel order under one lock, so all
/// charged I/O happens in exactly the single-threaded order.
pub(crate) enum SourceCore {
    Heap { heap: Arc<HeapFile>, next: u32, readahead: u32 },
    Shared { op: BoxedOperator, max: usize },
}

impl SourceCore {
    pub(crate) fn pull(&mut self, storage: &Storage) -> Result<Option<SourceItem>> {
        match self {
            SourceCore::Heap { heap, next, readahead } => {
                let total = heap.page_count();
                if *next >= total {
                    return Ok(None);
                }
                let len = (*readahead).min(total - *next);
                let pages = storage.read_heap_run(heap, PageId(*next), len)?;
                *next += len;
                Ok(Some(SourceItem::Pages(pages)))
            }
            SourceCore::Shared { op, max } => Ok(op.next_columns(*max)?.map(SourceItem::Batch)),
        }
    }

    pub(crate) fn close(self) -> Result<()> {
        match self {
            SourceCore::Heap { .. } => Ok(()),
            SourceCore::Shared { mut op, .. } => op.close(),
        }
    }

    /// The heap file this source reads, if any — the coordinate
    /// scoped fault injection keys morsel-panic draws on (shared
    /// operator sources have no file attribution).
    pub(crate) fn file_id(&self) -> Option<smooth_storage::FileId> {
        match self {
            SourceCore::Heap { heap, .. } => Some(heap.file_id()),
            SourceCore::Shared { .. } => None,
        }
    }
}

/// Open a [`ParallelSource`] into its locked core plus (for heap
/// sources) the thread-local decoder recipe.
pub(crate) fn open_source(
    source: ParallelSource,
    morsel_rows: usize,
) -> Result<(SourceCore, Option<(Schema, Predicate)>)> {
    match source {
        ParallelSource::Heap { heap, predicate, readahead } => {
            let schema = heap.schema().clone();
            Ok((
                SourceCore::Heap { heap, next: 0, readahead: readahead.max(1) },
                Some((schema, predicate)),
            ))
        }
        ParallelSource::Shared { mut op } => {
            op.open()?;
            Ok((SourceCore::Shared { op, max: morsel_rows.max(1) }, None))
        }
    }
}

/// Thread-local decode state for the partitioned heap source.
pub(crate) struct HeapDecoder {
    schema: Schema,
    filter: ScanFilter,
}

impl HeapDecoder {
    pub(crate) fn new(schema: Schema, predicate: Predicate) -> Self {
        let filter = ScanFilter::new(predicate, &schema);
        HeapDecoder { schema, filter }
    }

    fn decode(&mut self, storage: &Storage, pages: &[(PageId, PageBuf)]) -> Result<ColumnBatch> {
        let mut out = ColumnBatch::for_schema(&self.schema);
        for (_, page) in pages {
            let view = PageView::new(page)?;
            fill_page_columns(
                storage,
                &mut self.filter,
                &self.schema,
                &view,
                0..view.slot_count(),
                &mut out,
            )?;
        }
        Ok(out)
    }
}

/// Run one source item through the worker's stage chain.
pub(crate) fn process_item(
    item: SourceItem,
    decoder: &mut Option<HeapDecoder>,
    stages: &[Stage],
    storage: &Storage,
) -> Result<Morsel> {
    let mut morsel = match item {
        SourceItem::Batch(batch) => Morsel::Cols(batch),
        SourceItem::Pages(pages) => {
            let decoder = decoder
                .as_mut()
                .ok_or_else(|| Error::exec("heap source item reached a worker with no decoder"))?;
            Morsel::Cols(decoder.decode(storage, &pages)?)
        }
    };
    for stage in stages {
        morsel = stage.apply(storage, morsel)?;
    }
    Ok(morsel)
}

/// Per-morsel virtual-clock ledger recorded by
/// [`run_pipeline_traced`]: the deterministic input to the scaling
/// model. All values are virtual nanoseconds off the shared clock.
#[derive(Debug, Default, Clone)]
pub struct ScalingLedger {
    /// Serial prefix: source open (builds are traced separately below).
    pub prefix_ns: u64,
    /// Per-morsel build-phase source sections (serialized build-input
    /// I/O), concatenated across all builds in build order.
    pub build_src_ns: Vec<u64>,
    /// End index (exclusive) of each build's sections within the build
    /// vectors: the driver runs each build to completion before the next
    /// one starts, so the model must barrier between builds too.
    pub build_bounds: Vec<usize>,
    /// Per-morsel build-phase worker sections (decode, build stages,
    /// key partitioning and map inserts) — these fan out across the
    /// pool.
    pub build_proc_ns: Vec<u64>,
    /// Per-morsel source-section charges (I/O + in-lock CPU) — a
    /// serialized resource.
    pub src_ns: Vec<u64>,
    /// Per-morsel worker-side charges (decode, stages, exact partial
    /// aggregation) — these fan out across the pool.
    pub proc_ns: Vec<u64>,
    /// Per-morsel ordered-sink charges (the order-preserving aggregate
    /// fold when the merge is not exact) — a second serialized resource.
    pub sink_ns: Vec<u64>,
}

impl ScalingLedger {
    /// Total virtual time of the single-threaded run.
    pub fn total_ns(&self) -> u64 {
        self.prefix_ns
            + self.build_src_ns.iter().sum::<u64>()
            + self.build_proc_ns.iter().sum::<u64>()
            + self.src_ns.iter().sum::<u64>()
            + self.proc_ns.iter().sum::<u64>()
            + self.sink_ns.iter().sum::<u64>()
    }

    /// Greedy list-schedule of one phase: source sections serialize in
    /// morsel order (one lock, one disk arm), worker sections pack onto
    /// the earliest-free worker (the dynamic claiming the driver
    /// performs), sink sections serialize on the coordinator. Returns
    /// the phase end time plus the total time claiming workers sat
    /// blocked on the source lock (the contention the per-morsel
    /// `src_ns` hold sections induce at this worker count).
    fn schedule_with_wait(
        start: u64,
        src: &[u64],
        proc: &[u64],
        sink: Option<&[u64]>,
        workers: usize,
    ) -> (u64, u64) {
        let mut worker_free = vec![start; workers];
        let mut src_free = start;
        let mut sink_free = start;
        let mut wait = 0u64;
        for i in 0..src.len() {
            // invariant: `workers` comes from `workers.max(1)` at every
            // call site, so the range is never empty.
            let w = (0..workers).min_by_key(|&w| worker_free[w]).expect("workers >= 1");
            wait += src_free.saturating_sub(worker_free[w]);
            let src_done = worker_free[w].max(src_free) + src[i];
            src_free = src_done;
            worker_free[w] = src_done + proc[i];
            if let Some(sink) = sink {
                sink_free = sink_free.max(worker_free[w]) + sink[i];
            }
        }
        (worker_free.into_iter().max().unwrap_or(start).max(sink_free), wait)
    }

    fn schedule(
        start: u64,
        src: &[u64],
        proc: &[u64],
        sink: Option<&[u64]>,
        workers: usize,
    ) -> u64 {
        Self::schedule_with_wait(start, src, proc, sink, workers).0
    }

    /// The per-build section ranges within the build vectors. The driver
    /// runs each build to completion before the next starts, so each
    /// range schedules behind a barrier; sections past the last recorded
    /// bound (or all of them, when no bounds were recorded) form a final
    /// segment so the model never silently drops work.
    fn build_segments(&self) -> Vec<std::ops::Range<usize>> {
        let mut segments = Vec::with_capacity(self.build_bounds.len() + 1);
        let mut start = 0usize;
        for &end in &self.build_bounds {
            let end = end.min(self.build_src_ns.len());
            if end > start {
                segments.push(start..end);
            }
            start = start.max(end);
        }
        if start < self.build_src_ns.len() {
            segments.push(start..self.build_src_ns.len());
        }
        segments
    }

    /// Schedule every build phase, one after another (each build
    /// barriers before the next, exactly as the driver executes them).
    fn schedule_builds(&self, start: u64, workers: usize) -> u64 {
        self.build_segments().into_iter().fold(start, |t, seg| {
            Self::schedule(
                t,
                &self.build_src_ns[seg.clone()],
                &self.build_proc_ns[seg],
                None,
                workers,
            )
        })
    }

    /// Deterministic makespan of the pipeline at `workers` workers: the
    /// build phases schedule first (each with its own source
    /// serialization, worker packing and completion barrier), then the
    /// probe phase on top of them.
    pub fn makespan_ns(&self, workers: usize) -> u64 {
        let workers = workers.max(1);
        let after_builds = self.schedule_builds(self.prefix_ns, workers);
        Self::schedule(after_builds, &self.src_ns, &self.proc_ns, Some(&self.sink_ns), workers)
    }

    /// Modeled speedup over the single-worker makespan (which equals
    /// [`ScalingLedger::total_ns`] — the serial run — by construction).
    pub fn speedup(&self, workers: usize) -> f64 {
        self.makespan_ns(1) as f64 / self.makespan_ns(workers).max(1) as f64
    }

    /// Modeled time workers spend blocked on the serialized source lock
    /// at `workers` workers, summed over every build phase and the
    /// probe phase. Zero at one worker by construction (the sole worker
    /// never races itself for the lock); growth with the worker count
    /// measures how source-bound the pipeline is.
    pub fn modeled_src_wait_ns(&self, workers: usize) -> u64 {
        let workers = workers.max(1);
        let mut t = self.prefix_ns;
        let mut wait = 0u64;
        for seg in self.build_segments() {
            let (end, w) = Self::schedule_with_wait(
                t,
                &self.build_src_ns[seg.clone()],
                &self.build_proc_ns[seg],
                None,
                workers,
            );
            t = end;
            wait += w;
        }
        wait + Self::schedule_with_wait(
            t,
            &self.src_ns,
            &self.proc_ns,
            Some(&self.sink_ns),
            workers,
        )
        .1
    }

    /// Makespan of the build phases alone (without the prefix).
    pub fn build_makespan_ns(&self, workers: usize) -> u64 {
        self.schedule_builds(0, workers.max(1))
    }

    /// Modeled speedup of the blocking build phase alone — what the
    /// partitioned parallel build buys over the serial build.
    pub fn build_speedup(&self, workers: usize) -> f64 {
        self.build_makespan_ns(1) as f64 / self.build_makespan_ns(workers).max(1) as f64
    }

    /// The per-phase morsel sections in execution order: every build
    /// segment (source + worker sections, no sink) followed by the
    /// probe phase (source + worker + ordered-sink sections). Input to
    /// the multi-query model.
    fn phases(&self) -> Vec<SimPhase<'_>> {
        let mut phases: Vec<SimPhase<'_>> = self
            .build_segments()
            .into_iter()
            .map(|seg| SimPhase {
                src: &self.build_src_ns[seg.clone()],
                proc: &self.build_proc_ns[seg],
                sink: None,
            })
            .collect();
        phases.push(SimPhase { src: &self.src_ns, proc: &self.proc_ns, sink: Some(&self.sink_ns) });
        phases
    }
}

/// One phase of a traced query inside the multi-query model.
struct SimPhase<'a> {
    src: &'a [u64],
    proc: &'a [u64],
    sink: Option<&'a [u64]>,
}

/// One traced query's progress through its phases.
struct SimQuery<'a> {
    phases: Vec<SimPhase<'a>>,
    prefix_ns: u64,
    /// Current phase / next morsel within it.
    phase: usize,
    idx: usize,
    /// Serialized per-query resources.
    src_free: u64,
    sink_free: u64,
    /// Running completion max of the current phase (the barrier the
    /// next phase waits behind).
    phase_done: u64,
    /// Earliest time the current phase may start.
    avail: u64,
    admitted: bool,
    finished: Option<u64>,
}

impl SimQuery<'_> {
    fn admit(&mut self, at: u64) {
        self.admitted = true;
        self.avail = at;
        // The serial prefix (source open) heads the query's own
        // serialized source chain.
        self.src_free = at + self.prefix_ns;
        self.sink_free = at;
        self.phase_done = at + self.prefix_ns;
        self.advance();
    }

    /// Cross empty phases / barrier into the next phase; mark finished
    /// when every phase is drained.
    fn advance(&mut self) {
        while self.finished.is_none() {
            match self.phases.get(self.phase) {
                Some(p) if self.idx < p.src.len() => return,
                Some(_) => {
                    self.phase += 1;
                    self.idx = 0;
                    self.avail = self.phase_done;
                }
                None => self.finished = Some(self.phase_done.max(self.sink_free)),
            }
        }
    }
}

/// Deterministic makespan of several traced queries served concurrently
/// by one shared worker pool — the model behind the `serve`
/// experiment's cross-query scheduling gate. Each query keeps exactly
/// the single-query model's structure ([`ScalingLedger::makespan_ns`]):
/// its own serialized source chain, its own ordered sink, and a barrier
/// between build phases. The workers are shared: a freed worker claims
/// the morsel that can start earliest across all admitted queries (ties
/// to the lowest query index) — the greedy dynamic the cross-query
/// scheduler performs. At most `max_queries` queries run at once;
/// the rest wait FIFO and are admitted when a running query completes.
/// With one query (or `max_queries == 1`) this reduces to chained
/// single-query makespans by construction.
pub fn multi_query_makespan_ns(
    ledgers: &[ScalingLedger],
    workers: usize,
    max_queries: usize,
) -> u64 {
    let workers = workers.max(1);
    let max_queries = max_queries.max(1);
    let mut queries: Vec<SimQuery<'_>> = ledgers
        .iter()
        .map(|l| SimQuery {
            phases: l.phases(),
            prefix_ns: l.prefix_ns,
            phase: 0,
            idx: 0,
            src_free: 0,
            sink_free: 0,
            phase_done: 0,
            avail: 0,
            admitted: false,
            finished: None,
        })
        .collect();
    let mut waiting: std::collections::VecDeque<usize> = (0..queries.len()).collect();
    let mut makespan = 0u64;
    // Admit one query at `at`; if it finishes instantly (empty ledger),
    // its slot frees immediately — chain into the next waiting query.
    fn admit_chain(
        queries: &mut [SimQuery<'_>],
        waiting: &mut std::collections::VecDeque<usize>,
        mut at: u64,
        makespan: &mut u64,
    ) {
        while let Some(next) = waiting.pop_front() {
            queries[next].admit(at);
            match queries[next].finished {
                Some(end) => {
                    *makespan = (*makespan).max(end);
                    at = end;
                }
                None => break,
            }
        }
    }
    for _ in 0..max_queries.min(queries.len()) {
        admit_chain(&mut queries, &mut waiting, 0, &mut makespan);
    }
    let mut worker_free = vec![0u64; workers];
    loop {
        // The earliest-free worker claims the earliest-startable morsel.
        // invariant: `workers` is clamped to >= 1 by the caller, so the
        // range is never empty.
        let w = (0..workers).min_by_key(|&w| worker_free[w]).expect("workers >= 1");
        let claim = queries
            .iter()
            .enumerate()
            .filter(|(_, q)| q.admitted && q.finished.is_none())
            .map(|(i, q)| (worker_free[w].max(q.avail).max(q.src_free), i))
            .min();
        let Some((start, qi)) = claim else { break };
        let (src, proc, sink) = {
            let q = &queries[qi];
            let p = &q.phases[q.phase];
            (p.src[q.idx], p.proc[q.idx], p.sink.map(|s| s[q.idx]))
        };
        let q = &mut queries[qi];
        let src_done = start + src;
        q.src_free = src_done;
        let proc_done = src_done + proc;
        worker_free[w] = proc_done;
        q.phase_done = q.phase_done.max(proc_done);
        if let Some(sink) = sink {
            q.sink_free = q.sink_free.max(proc_done) + sink;
        }
        q.idx += 1;
        q.advance();
        if let Some(end) = q.finished {
            makespan = makespan.max(end);
            admit_chain(&mut queries, &mut waiting, end, &mut makespan);
        }
    }
    makespan
}

/// The build-side output schema: the build source's schema pushed
/// through the build stages' projections.
pub(crate) fn staged_schema(mut schema: Schema, stages: &[StageSpec]) -> Result<Schema> {
    for stage in stages {
        match stage {
            StageSpec::Filter(_) => {}
            StageSpec::Project(cols) => {
                let kept = cols
                    .iter()
                    .map(|&c| {
                        if c >= schema.len() {
                            Err(Error::schema(format!("project column {c} out of range")))
                        } else {
                            Ok(schema.column(c).clone())
                        }
                    })
                    .collect::<Result<Vec<_>>>()?;
                schema = Schema::new(kept)?;
            }
            StageSpec::Probe(_) => {
                return Err(Error::plan("hash-join build sides cannot nest probe stages"))
            }
        }
    }
    Ok(schema)
}

/// Resolve build-side stage specs (filters and projections only).
pub(crate) fn resolve_build_stages(stages: &[StageSpec]) -> Result<Vec<Stage>> {
    stages
        .iter()
        .map(|spec| match spec {
            StageSpec::Filter(p) => Ok(Stage::Filter(p.clone())),
            StageSpec::Project(cols) => Ok(Stage::Project(cols.clone())),
            StageSpec::Probe(_) => {
                Err(Error::plan("hash-join build sides cannot nest probe stages"))
            }
        })
        .collect()
}

/// Ensure a morsel arriving at a build sink is columnar.
pub(crate) fn build_batch(morsel: Morsel, schema: &Schema) -> Result<ColumnBatch> {
    match morsel {
        Morsel::Cols(batch) => Ok(batch),
        Morsel::Rows(rows) => ColumnBatch::from_rows(schema, &rows),
    }
}

/// Drain one build pipeline into its probe table on the calling thread,
/// charging the clock exactly like the serial [`crate::HashJoin`] build
/// (one hash op per build-input row, build-input I/O in serial morsel
/// order). Multi-worker builds run as a scheduler phase instead
/// ([`crate::schedule`]); the merged table is byte-identical either way.
fn run_build(
    spec: BuildSpec,
    storage: &Storage,
    morsel_rows: usize,
    ledger: Option<&mut ScalingLedger>,
) -> Result<ProbeTable> {
    let BuildSpec { source, stages, right_col, left_col, ty, partitions, mem_bytes } = spec;
    let partitions = partitions.max(1);
    let source_schema = source.schema();
    let schema = staged_schema(source_schema.clone(), &stages)?;
    if right_col >= schema.len() {
        return Err(Error::plan(format!("hash-join build key column {right_col} out of range")));
    }
    let stages = resolve_build_stages(&stages)?;
    let (core, decoder_spec) = open_source(source, morsel_rows)?;
    let mut table =
        build_inline(core, decoder_spec, &stages, &schema, right_col, partitions, storage, ledger)?;
    table.apply_budget(storage, mem_bytes)?;
    Ok(ProbeTable { table, left_col, ty })
}

/// Single-worker build: claim, fold, merge — optionally recording the
/// per-morsel build ledger sections.
#[allow(clippy::too_many_arguments)]
fn build_inline(
    mut core: SourceCore,
    decoder_spec: Option<(Schema, Predicate)>,
    stages: &[Stage],
    schema: &Schema,
    right_col: usize,
    partitions: usize,
    storage: &Storage,
    mut ledger: Option<&mut ScalingLedger>,
) -> Result<JoinBuildTable> {
    let clock = storage.clock();
    let cpu_hash = storage.cpu().hash_op_ns;
    let mut decoder = decoder_spec.map(|(s, p)| HeapDecoder::new(s, p));
    let mut partial = JoinBuildPartial::new(schema, right_col, partitions);
    let mut seq = 0u64;
    loop {
        let before = clock.snapshot();
        let Some(item) = core.pull(storage)? else { break };
        let after_src = clock.snapshot();
        let morsel = process_item(item, &mut decoder, stages, storage)?;
        let batch = build_batch(morsel, schema)?;
        clock.charge_cpu(cpu_hash * batch.len() as u64);
        partial.fold(seq, batch)?;
        if let Some(l) = ledger.as_deref_mut() {
            let after_proc = clock.snapshot();
            l.build_src_ns.push(after_src.since(&before).total_ns());
            l.build_proc_ns.push(after_proc.since(&after_src).total_ns());
        }
        seq += 1;
    }
    core.close()?;
    Ok(partial.into_table(schema))
}

/// Everything a pipeline run needs after the open/build prefix.
struct Prepared {
    core: SourceCore,
    decoder_spec: Option<(Schema, Predicate)>,
    stages: Vec<Stage>,
    sink: SinkSpec,
    storage: Storage,
}

/// Open the source, run the builds inline (bottom-up, exactly the serial
/// open cascade's order), and instantiate the runtime stages.
fn prepare(pipeline: ParallelPipeline, mut ledger: Option<&mut ScalingLedger>) -> Result<Prepared> {
    let ParallelPipeline { source, builds, stages, sink, storage, morsel_rows } = pipeline;
    let clock = storage.clock();
    let open_start = clock.snapshot();
    let mut schema = source.schema();
    let (core, decoder_spec) = open_source(source, morsel_rows)?;
    if let Some(l) = ledger.as_deref_mut() {
        l.prefix_ns = clock.snapshot().since(&open_start).total_ns();
    }
    let mut tables = Vec::with_capacity(builds.len());
    for build in builds {
        tables.push(Arc::new(run_build(build, &storage, morsel_rows, ledger.as_deref_mut())?));
        // Close this build's ledger segment: the next build (and the
        // probe phase) starts only after this one completed.
        if let Some(l) = ledger.as_deref_mut() {
            l.build_bounds.push(l.build_src_ns.len());
        }
    }
    // Resolve stages, tracking the running schema so each probe stage
    // knows its gathered output typing.
    let mut resolved = Vec::with_capacity(stages.len());
    for spec in stages {
        match spec {
            StageSpec::Filter(p) => resolved.push(Stage::Filter(p)),
            StageSpec::Project(cols) => {
                schema = staged_schema(schema, &[StageSpec::Project(cols.clone())])?;
                resolved.push(Stage::Project(cols));
            }
            StageSpec::Probe(i) => {
                let table: &Arc<ProbeTable> = tables
                    .get(i)
                    .ok_or_else(|| Error::plan(format!("probe stage references build {i}")))?;
                schema = match table.ty {
                    JoinType::Inner => schema.join(table.table.schema()),
                    JoinType::LeftSemi => schema,
                };
                resolved.push(Stage::Probe(Arc::clone(table), schema.clone()));
            }
        }
    }
    Ok(Prepared { core, decoder_spec, stages: resolved, sink, storage })
}

/// Execute the pipeline on `workers` worker threads (1 runs inline on
/// the calling thread; more submit it as the sole query of an ephemeral
/// [`crate::Scheduler`]). Returns the result rows, byte-identical to
/// [`crate::collect_rows`] over the equivalent serial operator tree.
pub fn run_pipeline(pipeline: ParallelPipeline, workers: usize) -> Result<Vec<Row>> {
    if workers <= 1 {
        run_inline(pipeline, None)
    } else {
        let scheduler = crate::schedule::Scheduler::new(workers, 1);
        let handle = scheduler.submit(pipeline)?;
        Ok(handle.wait()?.rows)
    }
}

/// Single-worker execution that also records the per-morsel
/// [`ScalingLedger`] for the deterministic scaling model.
pub fn run_pipeline_traced(pipeline: ParallelPipeline) -> Result<(Vec<Row>, ScalingLedger)> {
    let mut ledger = ScalingLedger::default();
    let rows = run_inline(pipeline, Some(&mut ledger))?;
    Ok((rows, ledger))
}

fn run_inline(
    pipeline: ParallelPipeline,
    mut ledger: Option<&mut ScalingLedger>,
) -> Result<Vec<Row>> {
    let clock_storage = pipeline.storage.clone();
    let clock = clock_storage.clock();
    let Prepared { mut core, decoder_spec, stages, sink, storage } =
        prepare(pipeline, ledger.as_deref_mut())?;
    let mut decoder = decoder_spec.map(|(schema, pred)| HeapDecoder::new(schema, pred));
    let (mut agg, exact) = match &sink {
        SinkSpec::Collect => (None, false),
        SinkSpec::Aggregate { group_cols, aggs, merge_exact } => {
            (Some(PartialAgg::new(group_cols, aggs)), *merge_exact)
        }
    };
    let mut rows = Vec::new();
    let mut seq = 0u64;
    loop {
        let before = clock.snapshot();
        let Some(item) = core.pull(&storage)? else { break };
        let after_src = clock.snapshot();
        let morsel = process_item(item, &mut decoder, &stages, &storage)?;
        let after_proc = clock.snapshot();
        match agg.as_mut() {
            Some(state) => state.update(&storage, seq, &morsel)?,
            None => rows.extend(morsel.into_rows()),
        }
        if let Some(l) = ledger.as_deref_mut() {
            let after_sink = clock.snapshot();
            let agg_ns = after_sink.since(&after_proc).total_ns();
            let proc_ns = after_proc.since(&after_src).total_ns();
            l.src_ns.push(after_src.since(&before).total_ns());
            // An exact-merge aggregate runs on the workers; an ordered
            // fold runs on the sink. Attribute its charge accordingly.
            if exact || agg.is_none() {
                l.proc_ns.push(proc_ns + agg_ns);
                l.sink_ns.push(0);
            } else {
                l.proc_ns.push(proc_ns);
                l.sink_ns.push(agg_ns);
            }
        }
        seq += 1;
    }
    if let Some(state) = agg {
        rows = state.finish();
    }
    // Probe input fully consumed: charge any deferred grace-join spill
    // passes, exactly where the serial probe exhaustion would.
    for stage in &stages {
        if let Stage::Probe(table, _) = stage {
            table.table.finish_probe(&storage)?;
        }
    }
    core.close()?;
    Ok(rows)
}

// Compile-time Send audit: everything a worker thread touches.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Morsel>();
    assert_send::<Stage>();
    assert_send::<Storage>();
    assert_send::<BoxedOperator>();
    assert_send::<JoinBuildPartial>();
    assert_send::<JoinBuildTable>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{collect_rows, ValuesOp};
    use crate::{batch_size, Filter, FullTableScan, HashAggregate, HashJoin, Project};
    use smooth_storage::{CpuCosts, DeviceProfile, HeapLoader, StorageConfig};
    use smooth_types::{Column, DataType};

    fn table(rows: i64) -> Arc<HeapFile> {
        let schema = Schema::new(vec![
            Column::new("c0", DataType::Int64),
            Column::new("c1", DataType::Int64),
            Column::new("pad", DataType::Text),
        ])
        .unwrap();
        let mut loader = HeapLoader::new_mem("t", schema);
        for i in 0..rows {
            let c1 = (i * 2654435761 % 1000 + 1000) % 1000;
            loader
                .push(&Row::new(vec![Value::Int(i), Value::Int(c1), Value::str("x".repeat(30))]))
                .unwrap();
        }
        Arc::new(loader.finish().unwrap())
    }

    fn storage() -> Storage {
        Storage::new(StorageConfig {
            device: DeviceProfile::custom("t", 1, 10),
            cpu: CpuCosts::default(),
            pool_pages: 64,
        })
    }

    fn values_build(
        schema: &Schema,
        rows: &[Row],
        right_col: usize,
        left_col: usize,
        ty: JoinType,
    ) -> BuildSpec {
        BuildSpec {
            source: ParallelSource::Shared {
                op: Box::new(ValuesOp::new(schema.clone(), rows.to_vec())),
            },
            stages: Vec::new(),
            right_col,
            left_col,
            ty,
            partitions: crate::BUILD_PARTITIONS,
            mem_bytes: crate::spill::mem_budget_bytes(),
        }
    }

    fn heap_pipeline(
        heap: &Arc<HeapFile>,
        s: &Storage,
        stages: Vec<StageSpec>,
    ) -> ParallelPipeline {
        ParallelPipeline {
            source: ParallelSource::Heap {
                heap: Arc::clone(heap),
                predicate: Predicate::True,
                readahead: crate::scan::FULL_SCAN_READAHEAD,
            },
            builds: Vec::new(),
            stages,
            sink: SinkSpec::Collect,
            storage: s.clone(),
            morsel_rows: batch_size(),
        }
    }

    #[test]
    fn heap_source_matches_serial_scan_rows_and_clock() {
        let heap = table(3000);
        let pred = Predicate::int_half_open(1, 0, 300);
        let s_serial = storage();
        let mut op = Filter::new(
            Box::new(FullTableScan::new(Arc::clone(&heap), s_serial.clone(), Predicate::True)),
            pred.clone(),
        );
        let expected = collect_rows(&mut op).unwrap();
        for workers in [1usize, 2, 4, 8] {
            let s_par = storage();
            let pipeline = heap_pipeline(&heap, &s_par, vec![StageSpec::Filter(pred.clone())]);
            let got = run_pipeline(pipeline, workers).unwrap();
            assert_eq!(got, expected, "rows diverge at {workers} workers");
            assert_eq!(
                s_par.clock().snapshot(),
                s_serial.clock().snapshot(),
                "clock totals diverge at {workers} workers"
            );
            assert_eq!(s_par.io_snapshot(), s_serial.io_snapshot());
        }
    }

    #[test]
    fn shared_source_matches_serial_stack() {
        let heap = table(2500);
        let pred = Predicate::int_half_open(1, 100, 700);
        let s_serial = storage();
        let mut op = Project::new(
            Box::new(Filter::new(
                Box::new(FullTableScan::new(Arc::clone(&heap), s_serial.clone(), Predicate::True)),
                pred.clone(),
            )),
            vec![1, 0],
        )
        .unwrap();
        let expected = collect_rows(&mut op).unwrap();
        for workers in [1usize, 3, 8] {
            let s_par = storage();
            let pipeline = ParallelPipeline {
                source: ParallelSource::Shared {
                    op: Box::new(FullTableScan::new(
                        Arc::clone(&heap),
                        s_par.clone(),
                        Predicate::True,
                    )),
                },
                builds: Vec::new(),
                stages: vec![StageSpec::Filter(pred.clone()), StageSpec::Project(vec![1, 0])],
                sink: SinkSpec::Collect,
                storage: s_par.clone(),
                morsel_rows: batch_size(),
            };
            let got = run_pipeline(pipeline, workers).unwrap();
            assert_eq!(got, expected, "rows diverge at {workers} workers");
            assert_eq!(s_par.clock().snapshot(), s_serial.clock().snapshot());
        }
    }

    #[test]
    fn probe_stage_matches_serial_hash_join() {
        let heap = table(1200);
        let right_rows: Vec<Row> =
            (0..500).map(|i| Row::new(vec![Value::Int((i * 7) % 1000), Value::Int(i)])).collect();
        let right_schema = Schema::new(vec![
            Column::new("rk", DataType::Int64),
            Column::new("rv", DataType::Int64),
        ])
        .unwrap();
        for ty in [JoinType::Inner, JoinType::LeftSemi] {
            let s_serial = storage();
            let mut hj = HashJoin::new(
                Box::new(FullTableScan::new(Arc::clone(&heap), s_serial.clone(), Predicate::True)),
                Box::new(ValuesOp::new(right_schema.clone(), right_rows.clone())),
                1,
                0,
                ty,
                s_serial.clone(),
            );
            let expected = collect_rows(&mut hj).unwrap();
            for workers in [1usize, 2, 4] {
                let s_par = storage();
                let mut pipeline = heap_pipeline(&heap, &s_par, vec![StageSpec::Probe(0)]);
                pipeline.builds.push(values_build(&right_schema, &right_rows, 0, 1, ty));
                let got = run_pipeline(pipeline, workers).unwrap();
                assert_eq!(got, expected, "{ty:?} rows diverge at {workers} workers");
                assert_eq!(s_par.clock().snapshot(), s_serial.clock().snapshot(), "{ty:?}");
            }
        }
    }

    #[test]
    fn parallel_build_over_heap_source_matches_serial_hash_join() {
        // The build side is itself a pipeline: heap source + filter
        // stage, drained by the partitioned parallel build.
        let probe = table(800);
        let build = table(1500);
        let pred = Predicate::int_half_open(1, 0, 400);
        let s_serial = storage();
        let mut hj = HashJoin::new(
            Box::new(FullTableScan::new(Arc::clone(&probe), s_serial.clone(), Predicate::True)),
            Box::new(FullTableScan::new(Arc::clone(&build), s_serial.clone(), pred.clone())),
            1,
            1,
            JoinType::Inner,
            s_serial.clone(),
        );
        let expected = collect_rows(&mut hj).unwrap();
        assert!(!expected.is_empty());
        for workers in [1usize, 2, 4, 8] {
            let s_par = storage();
            let mut pipeline = heap_pipeline(&probe, &s_par, vec![StageSpec::Probe(0)]);
            pipeline.builds.push(BuildSpec {
                source: ParallelSource::Heap {
                    heap: Arc::clone(&build),
                    predicate: pred.clone(),
                    readahead: crate::scan::FULL_SCAN_READAHEAD,
                },
                stages: Vec::new(),
                right_col: 1,
                left_col: 1,
                ty: JoinType::Inner,
                partitions: crate::BUILD_PARTITIONS,
                mem_bytes: crate::spill::mem_budget_bytes(),
            });
            let got = run_pipeline(pipeline, workers).unwrap();
            assert_eq!(got, expected, "rows diverge at {workers} workers");
            assert_eq!(s_par.clock().snapshot(), s_serial.clock().snapshot());
            assert_eq!(s_par.io_snapshot(), s_serial.io_snapshot());
        }
    }

    #[test]
    fn exact_partial_aggregate_matches_serial() {
        let heap = table(2000);
        let group_cols = vec![1usize];
        let aggs = vec![AggFunc::CountStar, AggFunc::Sum(0), AggFunc::Min(0), AggFunc::Max(0)];
        let s_serial = storage();
        let mut agg = HashAggregate::new(
            Box::new(FullTableScan::new(Arc::clone(&heap), s_serial.clone(), Predicate::True)),
            group_cols.clone(),
            aggs.clone(),
            s_serial.clone(),
        )
        .unwrap();
        let expected = collect_rows(&mut agg).unwrap();
        for workers in [1usize, 2, 4, 8] {
            let s_par = storage();
            let mut pipeline = heap_pipeline(&heap, &s_par, Vec::new());
            pipeline.sink = SinkSpec::Aggregate {
                group_cols: group_cols.clone(),
                aggs: aggs.clone(),
                merge_exact: true,
            };
            let got = run_pipeline(pipeline, workers).unwrap();
            assert_eq!(got, expected, "groups diverge at {workers} workers");
            assert_eq!(s_par.clock().snapshot(), s_serial.clock().snapshot());
        }
    }

    #[test]
    fn ordered_float_aggregate_matches_serial_fold() {
        // Float sums must fold in morsel order on the sink: assert the
        // parallel result is byte-identical to the serial driver.
        let schema = Schema::new(vec![
            Column::new("g", DataType::Int64),
            Column::new("v", DataType::Float64),
        ])
        .unwrap();
        let mut loader = HeapLoader::new_mem("f", schema.clone());
        for i in 0..1500i64 {
            let v = (i as f64) * 0.3 + 0.1234567 * ((i % 7) as f64);
            loader.push(&Row::new(vec![Value::Int(i % 13), Value::Float(v)])).unwrap();
        }
        let heap = Arc::new(loader.finish().unwrap());
        let group_cols = vec![0usize];
        let aggs = vec![AggFunc::Sum(1), AggFunc::Avg(1), AggFunc::CountStar];
        let s_serial = storage();
        let mut agg = HashAggregate::new(
            Box::new(FullTableScan::new(Arc::clone(&heap), s_serial.clone(), Predicate::True)),
            group_cols.clone(),
            aggs.clone(),
            s_serial.clone(),
        )
        .unwrap();
        let expected = collect_rows(&mut agg).unwrap();
        for workers in [1usize, 2, 4] {
            let s_par = storage();
            let mut pipeline = heap_pipeline(&heap, &s_par, Vec::new());
            pipeline.sink = SinkSpec::Aggregate {
                group_cols: group_cols.clone(),
                aggs: aggs.clone(),
                merge_exact: false,
            };
            let got = run_pipeline(pipeline, workers).unwrap();
            assert_eq!(got, expected, "float fold diverges at {workers} workers");
            assert_eq!(s_par.clock().snapshot(), s_serial.clock().snapshot());
        }
    }

    #[test]
    fn errors_propagate_from_workers() {
        let heap = table(500);
        let s = storage();
        // Probing a column past the schema errors (the serial columnar
        // HashJoin reports the same).
        let pipeline = heap_pipeline(
            &heap,
            &s,
            vec![StageSpec::Filter(Predicate::StrEq { col: 1, value: "x".into() })],
        );
        assert!(run_pipeline(pipeline, 4).is_err());
    }

    #[test]
    fn build_side_errors_propagate() {
        let heap = table(400);
        let right_schema = Schema::new(vec![Column::new("rk", DataType::Int64)]).unwrap();
        for workers in [1usize, 4] {
            let s = storage();
            let mut pipeline = heap_pipeline(&heap, &s, vec![StageSpec::Probe(0)]);
            pipeline.builds.push(BuildSpec {
                source: ParallelSource::Shared {
                    op: Box::new(ValuesOp::new(
                        right_schema.clone(),
                        vec![Row::new(vec![Value::Int(1)])],
                    )),
                },
                stages: Vec::new(),
                right_col: 9, // out of range: must surface as a plan error
                left_col: 1,
                ty: JoinType::Inner,
                partitions: crate::BUILD_PARTITIONS,
                mem_bytes: crate::spill::mem_budget_bytes(),
            });
            assert!(run_pipeline(pipeline, workers).is_err(), "{workers} workers");
        }
    }

    #[test]
    fn ledger_model_is_consistent() {
        let heap = table(3000);
        let s = storage();
        let pipeline = heap_pipeline(&heap, &s, vec![StageSpec::Filter(Predicate::int_lt(1, 500))]);
        let (rows, ledger) = run_pipeline_traced(pipeline).unwrap();
        assert!(!rows.is_empty());
        assert!(!ledger.src_ns.is_empty());
        // One worker's makespan is exactly the serial total.
        assert_eq!(ledger.makespan_ns(1), ledger.total_ns());
        // More workers never slow the model down, and speedup is bounded
        // by the serialized source.
        let m2 = ledger.makespan_ns(2);
        let m4 = ledger.makespan_ns(4);
        assert!(m2 <= ledger.makespan_ns(1));
        assert!(m4 <= m2);
        let src_total: u64 = ledger.src_ns.iter().sum();
        assert!(m4 >= src_total, "source sections serialize");
        assert!(ledger.speedup(4) >= 1.0);
        // Modeled source-lock wait: zero at one worker (a lone worker
        // never races itself), monotone data: more workers can only add
        // contention on the serialized source.
        assert_eq!(ledger.modeled_src_wait_ns(1), 0);
        assert!(ledger.modeled_src_wait_ns(8) >= ledger.modeled_src_wait_ns(2));
    }

    #[test]
    fn multi_query_model_reduces_to_single_query_chains() {
        let heap = table(3000);
        let s = storage();
        let pipeline = heap_pipeline(&heap, &s, vec![StageSpec::Filter(Predicate::int_lt(1, 500))]);
        let (_, ledger) = run_pipeline_traced(pipeline).unwrap();
        for workers in [1usize, 2, 4] {
            // One query: the multi-query schedule IS the single-query one.
            assert_eq!(
                multi_query_makespan_ns(std::slice::from_ref(&ledger), workers, 4),
                ledger.makespan_ns(workers),
                "single-query equivalence at {workers} workers"
            );
            // Admission cap 1: queries chain back to back.
            assert_eq!(
                multi_query_makespan_ns(&[ledger.clone(), ledger.clone()], workers, 1),
                2 * ledger.makespan_ns(workers),
                "one-at-a-time chaining at {workers} workers"
            );
        }
        // Serving two copies concurrently on 4 workers beats (or ties)
        // running them one at a time — cross-query scheduling fills the
        // source-lock stalls with the other query's work.
        let solo_chain = 2 * ledger.makespan_ns(4);
        let served = multi_query_makespan_ns(&[ledger.clone(), ledger.clone()], 4, 2);
        assert!(served <= solo_chain, "served {served} > chained {solo_chain}");
        // And never beats the total-work lower bound on the serialized
        // per-query source chains.
        let src_total: u64 = ledger.src_ns.iter().sum();
        assert!(served >= src_total + ledger.prefix_ns);
    }

    #[test]
    fn traced_build_sections_feed_the_model() {
        let probe = table(1000);
        let build = table(2000);
        let s = storage();
        let mut pipeline = heap_pipeline(&probe, &s, vec![StageSpec::Probe(0)]);
        pipeline.builds.push(BuildSpec {
            source: ParallelSource::Heap {
                heap: Arc::clone(&build),
                predicate: Predicate::True,
                readahead: crate::scan::FULL_SCAN_READAHEAD,
            },
            stages: Vec::new(),
            right_col: 1,
            left_col: 1,
            ty: JoinType::Inner,
            partitions: crate::BUILD_PARTITIONS,
            mem_bytes: crate::spill::mem_budget_bytes(),
        });
        let (rows, ledger) = run_pipeline_traced(pipeline).unwrap();
        assert!(!rows.is_empty());
        assert!(!ledger.build_src_ns.is_empty(), "build morsels recorded");
        assert_eq!(ledger.build_src_ns.len(), ledger.build_proc_ns.len());
        assert_eq!(ledger.build_bounds, vec![ledger.build_src_ns.len()]);
        // The one-worker makespan still reproduces the serial total with
        // the build phase folded in.
        assert_eq!(ledger.makespan_ns(1), ledger.total_ns());
        assert!(ledger.build_speedup(1) == 1.0);
        assert!(ledger.build_speedup(4) >= 1.0);
        assert!(ledger.makespan_ns(4) <= ledger.makespan_ns(2));
    }

    #[test]
    fn multi_build_ledger_barriers_between_builds() {
        // Two chained probes: each build runs to completion before the
        // next starts, and the model must barrier the same way.
        let probe = table(800);
        let build_a = table(1200);
        let build_b = table(1200);
        let s = storage();
        let mut pipeline =
            heap_pipeline(&probe, &s, vec![StageSpec::Probe(0), StageSpec::Probe(1)]);
        for heap in [&build_a, &build_b] {
            pipeline.builds.push(BuildSpec {
                source: ParallelSource::Heap {
                    heap: Arc::clone(heap),
                    predicate: Predicate::int_half_open(1, 0, 40),
                    readahead: crate::scan::FULL_SCAN_READAHEAD,
                },
                stages: Vec::new(),
                right_col: 1,
                left_col: 1,
                ty: JoinType::LeftSemi,
                partitions: crate::BUILD_PARTITIONS,
                mem_bytes: crate::spill::mem_budget_bytes(),
            });
        }
        let (rows, ledger) = run_pipeline_traced(pipeline).unwrap();
        assert!(!rows.is_empty());
        assert_eq!(ledger.build_bounds.len(), 2, "one segment per build");
        assert_eq!(*ledger.build_bounds.last().unwrap(), ledger.build_src_ns.len());
        assert_eq!(ledger.makespan_ns(1), ledger.total_ns());
        // The barriered schedule can never beat the (incorrect)
        // barrier-free packing of both builds as one phase.
        let one_phase =
            ScalingLedger { build_bounds: vec![], ..ledger.clone() }.build_makespan_ns(4);
        assert!(ledger.build_makespan_ns(4) >= one_phase);
        // The parallel runs still match serial with chained builds.
        let serial_rows = rows.clone();
        for workers in [2usize, 4] {
            let s_par = storage();
            let mut pipeline =
                heap_pipeline(&probe, &s_par, vec![StageSpec::Probe(0), StageSpec::Probe(1)]);
            for heap in [&build_a, &build_b] {
                pipeline.builds.push(BuildSpec {
                    source: ParallelSource::Heap {
                        heap: Arc::clone(heap),
                        predicate: Predicate::int_half_open(1, 0, 40),
                        readahead: crate::scan::FULL_SCAN_READAHEAD,
                    },
                    stages: Vec::new(),
                    right_col: 1,
                    left_col: 1,
                    ty: JoinType::LeftSemi,
                    partitions: crate::BUILD_PARTITIONS,
                    mem_bytes: crate::spill::mem_budget_bytes(),
                });
            }
            let got = run_pipeline(pipeline, workers).unwrap();
            assert_eq!(got, serial_rows, "chained builds diverge at {workers} workers");
        }
    }
}
