//! Property tests for the morsel-driven parallel driver: for arbitrary
//! data, predicates, worker counts and morsel sizes, the parallel
//! pipeline must produce the **exact row sequence** of the
//! single-threaded columnar driver over the equivalent operator tree,
//! and charge the **exact same virtual CPU/IO clock totals** and I/O
//! counters. This extends PR 3's protocol-equivalence harness from
//! iterator protocols to the worker pool: parallelism, like batching,
//! must be an execution-strategy change only.

use std::sync::Arc;

use proptest::prelude::*;
use smooth_executor::operator::ValuesOp;
use smooth_executor::parallel::{
    run_pipeline, BuildSpec, ParallelPipeline, ParallelSource, SinkSpec, StageSpec,
};
use smooth_executor::scan::FULL_SCAN_READAHEAD;
use smooth_executor::{
    batch_size, collect_rows, AggFunc, Filter, FullTableScan, HashAggregate, HashJoin, IndexScan,
    JoinType, Operator, Predicate, Project, SortScan,
};
use smooth_index::BTreeIndex;
use smooth_storage::{CpuCosts, DeviceProfile, HeapFile, Storage, StorageConfig};
use smooth_types::{Column, DataType, Row, Schema, Value};

const WORKER_GRID: [usize; 4] = [1, 2, 4, 8];

fn build_table(keys: &[i64]) -> (Arc<HeapFile>, Arc<BTreeIndex>) {
    let schema = Schema::new(vec![
        Column::new("c0", DataType::Int64),
        Column::new("c1", DataType::Int64),
        Column::new("pad", DataType::Text),
    ])
    .unwrap();
    let mut l = smooth_storage::HeapLoader::new_mem("t", schema);
    for (i, &k) in keys.iter().enumerate() {
        l.push(&Row::new(vec![Value::Int(i as i64), Value::Int(k), Value::str("p".repeat(60))]))
            .unwrap();
    }
    let heap = Arc::new(l.finish().unwrap());
    let index = Arc::new(BTreeIndex::build_from_heap("i", &heap, 1).unwrap());
    (heap, index)
}

fn storage(pool: usize) -> Storage {
    Storage::new(StorageConfig {
        device: DeviceProfile::custom("t", 1, 10),
        cpu: CpuCosts::default(),
        pool_pages: pool,
    })
}

/// Drain a serial operator through the columnar protocol at a fixed
/// morsel size (so shared-source comparisons see identical pull
/// boundaries).
fn collect_serial(op: &mut dyn Operator, max: usize) -> Vec<Row> {
    op.open().unwrap();
    let mut rows = Vec::new();
    while let Some(batch) = op.next_columns(max).unwrap() {
        rows.extend(batch.into_rows());
    }
    op.close().unwrap();
    rows
}

/// Assert rows, clock totals and I/O counters all match between a
/// serial run and a parallel run.
fn assert_equal_runs(
    serial: (&[Row], &Storage),
    parallel: (&[Row], &Storage),
    context: &str,
) -> std::result::Result<(), TestCaseError> {
    prop_assert!(parallel.0 == serial.0, "row sequence diverges: {context}");
    prop_assert!(
        parallel.1.clock().snapshot() == serial.1.clock().snapshot(),
        "virtual clock totals diverge: {context}"
    );
    prop_assert!(
        parallel.1.io_snapshot() == serial.1.io_snapshot(),
        "I/O counters diverge: {context}"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Partitioned heap source with filter + projection stages: parallel
    /// ≡ serial for every worker count and readahead partitioning.
    #[test]
    fn heap_pipeline_equals_serial(
        keys in proptest::collection::vec(0i64..300, 1..1200),
        lo in 0i64..300,
        width in 0i64..330,
        pool in 8usize..64,
        readahead in prop_oneof![Just(1u32), Just(3u32), Just(8u32), Just(FULL_SCAN_READAHEAD)],
    ) {
        let (heap, _) = build_table(&keys);
        let hi = lo + width;
        let pred = Predicate::int_half_open(1, lo, hi);
        let s_serial = storage(pool);
        let mut serial_op = Project::new(
            Box::new(Filter::new(
                Box::new(
                    FullTableScan::new(Arc::clone(&heap), s_serial.clone(), Predicate::True)
                        .with_readahead(readahead),
                ),
                pred.clone(),
            )),
            vec![1, 0],
        )
        .unwrap();
        let expected = collect_rows(&mut serial_op).unwrap();
        for workers in WORKER_GRID {
            let s_par = storage(pool);
            let pipeline = ParallelPipeline {
                source: ParallelSource::Heap {
                    heap: Arc::clone(&heap),
                    predicate: Predicate::True,
                    readahead,
                },
                builds: Vec::new(),
                stages: vec![StageSpec::Filter(pred.clone()), StageSpec::Project(vec![1, 0])],
                sink: SinkSpec::Collect,
                storage: s_par.clone(),
                morsel_rows: batch_size(),
            };
            let got = run_pipeline(pipeline, workers).unwrap();
            assert_equal_runs(
                (&expected, &s_serial),
                (&got, &s_par),
                &format!("heap pipeline, {workers} workers, readahead {readahead}"),
            )?;
        }
    }

    /// A predicate pushed *into* the partitioned scan (per-worker
    /// ScanFilter state) behaves exactly like the serial pushed-down scan.
    #[test]
    fn pushed_predicate_heap_scan_equals_serial(
        keys in proptest::collection::vec(0i64..200, 1..1000),
        hi in 0i64..220,
        residual_hi in 0i64..900,
    ) {
        let (heap, _) = build_table(&keys);
        let pred = Predicate::and(vec![
            Predicate::int_half_open(1, 0, hi),
            Predicate::int_lt(0, residual_hi),
        ]);
        let s_serial = storage(32);
        let mut serial_op =
            FullTableScan::new(Arc::clone(&heap), s_serial.clone(), pred.clone());
        let expected = collect_rows(&mut serial_op).unwrap();
        for workers in WORKER_GRID {
            let s_par = storage(32);
            let pipeline = ParallelPipeline {
                source: ParallelSource::Heap {
                    heap: Arc::clone(&heap),
                    predicate: pred.clone(),
                    readahead: FULL_SCAN_READAHEAD,
                },
                builds: Vec::new(),
                stages: Vec::new(),
                sink: SinkSpec::Collect,
                storage: s_par.clone(),
                morsel_rows: batch_size(),
            };
            let got = run_pipeline(pipeline, workers).unwrap();
            assert_equal_runs(
                (&expected, &s_serial),
                (&got, &s_par),
                &format!("pushed-predicate scan, {workers} workers"),
            )?;
        }
    }

    /// Index and sort scans as *shared* sources (the serial-section
    /// fallback) with a filter stage above, across morsel sizes.
    #[test]
    fn shared_scan_sources_equal_serial(
        keys in proptest::collection::vec(0i64..150, 1..700),
        lo in 0i64..150,
        width in 0i64..170,
        max in 1usize..90,
        use_sort_scan in any::<bool>(),
    ) {
        let (heap, index) = build_table(&keys);
        let hi = lo + width;
        let residual = Predicate::int_ge(0, 0);
        let mk_scan = |s: &Storage| -> Box<dyn Operator + Send> {
            if use_sort_scan {
                Box::new(SortScan::new(
                    Arc::clone(&heap),
                    Arc::clone(&index),
                    s.clone(),
                    std::ops::Bound::Included(lo),
                    std::ops::Bound::Excluded(hi),
                    Predicate::True,
                ))
            } else {
                Box::new(IndexScan::new(
                    Arc::clone(&heap),
                    Arc::clone(&index),
                    s.clone(),
                    std::ops::Bound::Included(lo),
                    std::ops::Bound::Excluded(hi),
                    Predicate::True,
                ))
            }
        };
        let s_serial = storage(16);
        let mut serial_op = Filter::new(mk_scan(&s_serial), residual.clone());
        let expected = collect_serial(&mut serial_op, max);
        for workers in WORKER_GRID {
            let s_par = storage(16);
            let pipeline = ParallelPipeline {
                source: ParallelSource::Shared { op: mk_scan(&s_par) },
                builds: Vec::new(),
                stages: vec![StageSpec::Filter(residual.clone())],
                sink: SinkSpec::Collect,
                storage: s_par.clone(),
                morsel_rows: max,
            };
            let got = run_pipeline(pipeline, workers).unwrap();
            assert_equal_runs(
                (&expected, &s_serial),
                (&got, &s_par),
                &format!("shared scan (sort={use_sort_scan}), {workers} workers, max {max}"),
            )?;
        }
    }

    /// Hash-join probe stage (inner and semi) above the partitioned heap
    /// source ≡ the serial HashJoin over the same inputs.
    #[test]
    fn probe_pipeline_equals_serial_hash_join(
        keys in proptest::collection::vec(0i64..80, 1..600),
        right in proptest::collection::vec((0i64..80, -50i64..50), 0..120),
        semi in any::<bool>(),
    ) {
        let (heap, _) = build_table(&keys);
        let ty = if semi { JoinType::LeftSemi } else { JoinType::Inner };
        let right_schema = Schema::new(vec![
            Column::new("rk", DataType::Int64),
            Column::new("rv", DataType::Int64),
        ])
        .unwrap();
        let right_rows: Vec<Row> = right
            .iter()
            .map(|&(k, v)| Row::new(vec![Value::Int(k), Value::Int(v)]))
            .collect();
        let s_serial = storage(32);
        let mut serial_op = HashJoin::new(
            Box::new(FullTableScan::new(Arc::clone(&heap), s_serial.clone(), Predicate::True)),
            Box::new(ValuesOp::new(right_schema.clone(), right_rows.clone())),
            1,
            0,
            ty,
            s_serial.clone(),
        );
        let expected = collect_rows(&mut serial_op).unwrap();
        for workers in WORKER_GRID {
            let s_par = storage(32);
            let pipeline = ParallelPipeline {
                source: ParallelSource::Heap {
                    heap: Arc::clone(&heap),
                    predicate: Predicate::True,
                    readahead: FULL_SCAN_READAHEAD,
                },
                builds: vec![BuildSpec {
                    source: ParallelSource::Shared {
                        op: Box::new(ValuesOp::new(right_schema.clone(), right_rows.clone())),
                    },
                    stages: Vec::new(),
                    right_col: 0,
                    left_col: 1,
                    ty,
                    partitions: smooth_executor::BUILD_PARTITIONS,
                    mem_bytes: smooth_executor::mem_budget_bytes(),
                    open_at: 0,
                    open_order: 0,
                }],
                stages: vec![StageSpec::Probe(0)],
                sink: SinkSpec::Collect,
                storage: s_par.clone(),
                morsel_rows: batch_size(),
            };
            let got = run_pipeline(pipeline, workers).unwrap();
            assert_equal_runs(
                (&expected, &s_serial),
                (&got, &s_par),
                &format!("{ty:?} probe, {workers} workers"),
            )?;
        }
    }

    /// Partial aggregation with per-worker maps + first-seen merge ≡ the
    /// serial HashAggregate, including group emission order.
    #[test]
    fn partial_aggregate_equals_serial(
        keys in proptest::collection::vec(0i64..40, 1..800),
        scalar in any::<bool>(),
        filtered_hi in 0i64..45,
    ) {
        let (heap, _) = build_table(&keys);
        let group_cols: Vec<usize> = if scalar { vec![] } else { vec![1] };
        let aggs = vec![
            AggFunc::CountStar,
            AggFunc::Count(1),
            AggFunc::Sum(0),
            AggFunc::Avg(0),
            AggFunc::Min(0),
            AggFunc::Max(0),
            AggFunc::SumProduct(0, 1),
        ];
        let pred = Predicate::int_lt(1, filtered_hi);
        let s_serial = storage(32);
        let mut serial_op = HashAggregate::new(
            Box::new(Filter::new(
                Box::new(FullTableScan::new(Arc::clone(&heap), s_serial.clone(), Predicate::True)),
                pred.clone(),
            )),
            group_cols.clone(),
            aggs.clone(),
            s_serial.clone(),
        )
        .unwrap();
        let expected = collect_rows(&mut serial_op).unwrap();
        for workers in WORKER_GRID {
            let s_par = storage(32);
            let pipeline = ParallelPipeline {
                source: ParallelSource::Heap {
                    heap: Arc::clone(&heap),
                    predicate: Predicate::True,
                    readahead: FULL_SCAN_READAHEAD,
                },
                builds: Vec::new(),
                stages: vec![StageSpec::Filter(pred.clone())],
                sink: SinkSpec::Aggregate {
                    group_cols: group_cols.clone(),
                    aggs: aggs.clone(),
                    merge_exact: true,
                },
                storage: s_par.clone(),
                morsel_rows: batch_size(),
            };
            let got = run_pipeline(pipeline, workers).unwrap();
            assert_equal_runs(
                (&expected, &s_serial),
                (&got, &s_par),
                &format!("partial agg (scalar={scalar}), {workers} workers"),
            )?;
        }
    }
}
