//! Property tests for the parallel partitioned hash-join build: for
//! arbitrary data (null keys, duplicate keys, `Text` payloads), partition
//! counts, morsel sizes and worker counts, the pipeline with a
//! partitioned build must produce the **exact row sequence** of the
//! serial columnar [`HashJoin`] and charge the **exact same virtual
//! CPU/IO clock totals** and I/O counters. The build phase — per-worker
//! hash-partitioned partials merged by global build position — must be an
//! execution-strategy change only, like every other form of parallelism
//! in this repo.

use std::sync::Arc;

use proptest::prelude::*;
use smooth_executor::operator::ValuesOp;
use smooth_executor::parallel::{
    run_pipeline, BuildSpec, ParallelPipeline, ParallelSource, SinkSpec, StageSpec,
};
use smooth_executor::scan::FULL_SCAN_READAHEAD;
use smooth_executor::{
    collect_rows, FullTableScan, HashJoin, JoinType, Predicate, BUILD_PARTITIONS,
};
use smooth_storage::{CpuCosts, DeviceProfile, HeapFile, HeapLoader, Storage, StorageConfig};
use smooth_types::{Column, DataType, Row, Schema, Value};

const WORKER_GRID: [usize; 4] = [1, 2, 4, 8];

fn probe_table(keys: &[i64]) -> Arc<HeapFile> {
    let schema = Schema::new(vec![
        Column::new("c0", DataType::Int64),
        Column::new("c1", DataType::Int64),
        Column::new("pad", DataType::Text),
    ])
    .unwrap();
    let mut l = HeapLoader::new_mem("probe", schema);
    for (i, &k) in keys.iter().enumerate() {
        l.push(&Row::new(vec![Value::Int(i as i64), Value::Int(k), Value::str("p".repeat(40))]))
            .unwrap();
    }
    Arc::new(l.finish().unwrap())
}

/// Build-side rows with optional NULL keys and a Text payload.
fn build_rows(keys: &[Option<i64>]) -> (Schema, Vec<Row>) {
    let schema = Schema::new(vec![
        Column::nullable("rk", DataType::Int64),
        Column::new("rv", DataType::Int64),
        Column::new("rtxt", DataType::Text),
    ])
    .unwrap();
    let rows = keys
        .iter()
        .enumerate()
        .map(|(i, k)| {
            let key = match k {
                Some(v) => Value::Int(*v),
                None => Value::Null,
            };
            Row::new(vec![key, Value::Int(i as i64), Value::str(format!("t{i}"))])
        })
        .collect();
    (schema, rows)
}

fn storage(pool: usize) -> Storage {
    Storage::new(StorageConfig {
        device: DeviceProfile::custom("t", 1, 10),
        cpu: CpuCosts::default(),
        pool_pages: pool,
    })
}

fn assert_equal_runs(
    serial: (&[Row], &Storage),
    parallel: (&[Row], &Storage),
    context: &str,
) -> std::result::Result<(), TestCaseError> {
    prop_assert!(parallel.0 == serial.0, "row sequence diverges: {context}");
    prop_assert!(
        parallel.1.clock().snapshot() == serial.1.clock().snapshot(),
        "virtual clock totals diverge: {context}"
    );
    prop_assert!(
        parallel.1.io_snapshot() == serial.1.io_snapshot(),
        "I/O counters diverge: {context}"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Shared-source build (a `ValuesOp` right side) across partition
    /// counts, morsel sizes and worker counts ≡ the serial HashJoin —
    /// including NULL build keys, duplicate keys and Text payloads.
    #[test]
    fn partitioned_build_equals_serial_build(
        probe_keys in proptest::collection::vec(0i64..60, 1..500),
        build_keys in proptest::collection::vec(
            prop_oneof![3 => (0i64..60).prop_map(Some), 1 => Just(None)],
            0..150,
        ),
        semi in any::<bool>(),
        partitions in prop_oneof![
            Just(1usize), Just(2usize), Just(7usize), Just(BUILD_PARTITIONS)
        ],
        morsel_rows in 1usize..120,
    ) {
        let heap = probe_table(&probe_keys);
        let ty = if semi { JoinType::LeftSemi } else { JoinType::Inner };
        let (right_schema, right_rows) = build_rows(&build_keys);
        let s_serial = storage(32);
        let mut serial_op = HashJoin::new(
            Box::new(FullTableScan::new(Arc::clone(&heap), s_serial.clone(), Predicate::True)),
            Box::new(ValuesOp::new(right_schema.clone(), right_rows.clone())),
            1,
            0,
            ty,
            s_serial.clone(),
        );
        let expected = collect_rows(&mut serial_op).unwrap();
        for workers in WORKER_GRID {
            let s_par = storage(32);
            let pipeline = ParallelPipeline {
                source: ParallelSource::Heap {
                    heap: Arc::clone(&heap),
                    predicate: Predicate::True,
                    readahead: FULL_SCAN_READAHEAD,
                },
                builds: vec![BuildSpec {
                    source: ParallelSource::Shared {
                        op: Box::new(ValuesOp::new(right_schema.clone(), right_rows.clone())),
                    },
                    stages: Vec::new(),
                    right_col: 0,
                    left_col: 1,
                    ty,
                    partitions,
                    mem_bytes: smooth_executor::mem_budget_bytes(),
                    open_at: 0,
                    open_order: 0,
                }],
                stages: vec![StageSpec::Probe(0)],
                sink: SinkSpec::Collect,
                storage: s_par.clone(),
                morsel_rows,
            };
            let got = run_pipeline(pipeline, workers).unwrap();
            assert_equal_runs(
                (&expected, &s_serial),
                (&got, &s_par),
                &format!(
                    "{ty:?}, {workers} workers, {partitions} partitions, morsel {morsel_rows}"
                ),
            )?;
        }
    }

    /// Heap-source build side (build input I/O serialized under the build
    /// lock, decode + filter + insert fanned out) ≡ the serial HashJoin
    /// over a pushed-down scan, across worker counts and partitions.
    #[test]
    fn heap_build_pipeline_equals_serial_build(
        probe_keys in proptest::collection::vec(0i64..80, 1..400),
        build_keys in proptest::collection::vec(0i64..80, 1..600),
        hi in 0i64..90,
        semi in any::<bool>(),
        partitions in prop_oneof![Just(1usize), Just(3usize), Just(BUILD_PARTITIONS)],
    ) {
        let probe = probe_table(&probe_keys);
        let build = probe_table(&build_keys);
        let ty = if semi { JoinType::LeftSemi } else { JoinType::Inner };
        let pred = Predicate::int_half_open(1, 0, hi);
        let s_serial = storage(32);
        let mut serial_op = HashJoin::new(
            Box::new(FullTableScan::new(Arc::clone(&probe), s_serial.clone(), Predicate::True)),
            Box::new(FullTableScan::new(Arc::clone(&build), s_serial.clone(), pred.clone())),
            1,
            1,
            ty,
            s_serial.clone(),
        );
        let expected = collect_rows(&mut serial_op).unwrap();
        for workers in WORKER_GRID {
            let s_par = storage(32);
            let pipeline = ParallelPipeline {
                source: ParallelSource::Heap {
                    heap: Arc::clone(&probe),
                    predicate: Predicate::True,
                    readahead: FULL_SCAN_READAHEAD,
                },
                builds: vec![BuildSpec {
                    source: ParallelSource::Heap {
                        heap: Arc::clone(&build),
                        predicate: pred.clone(),
                        readahead: FULL_SCAN_READAHEAD,
                    },
                    stages: Vec::new(),
                    right_col: 1,
                    left_col: 1,
                    ty,
                    partitions,
                    mem_bytes: smooth_executor::mem_budget_bytes(),
                    open_at: 0,
                    open_order: 0,
                }],
                stages: vec![StageSpec::Probe(0)],
                sink: SinkSpec::Collect,
                storage: s_par.clone(),
                morsel_rows: smooth_executor::batch_size(),
            };
            let got = run_pipeline(pipeline, workers).unwrap();
            assert_equal_runs(
                (&expected, &s_serial),
                (&got, &s_par),
                &format!("{ty:?} heap build, {workers} workers, {partitions} partitions"),
            )?;
        }
    }

    /// A filter stage on the build side behaves exactly like the serial
    /// Filter operator feeding the serial build.
    #[test]
    fn staged_build_side_equals_serial_filter_stack(
        probe_keys in proptest::collection::vec(0i64..50, 1..300),
        build_keys in proptest::collection::vec(0i64..50, 1..400),
        residual_hi in 0i64..400,
    ) {
        let probe = probe_table(&probe_keys);
        let build = probe_table(&build_keys);
        let residual = Predicate::int_lt(0, residual_hi);
        let s_serial = storage(32);
        let mut serial_op = HashJoin::new(
            Box::new(FullTableScan::new(Arc::clone(&probe), s_serial.clone(), Predicate::True)),
            Box::new(smooth_executor::Filter::new(
                Box::new(FullTableScan::new(Arc::clone(&build), s_serial.clone(), Predicate::True)),
                residual.clone(),
            )),
            1,
            1,
            JoinType::Inner,
            s_serial.clone(),
        );
        let expected = collect_rows(&mut serial_op).unwrap();
        for workers in [1usize, 4] {
            let s_par = storage(32);
            let pipeline = ParallelPipeline {
                source: ParallelSource::Heap {
                    heap: Arc::clone(&probe),
                    predicate: Predicate::True,
                    readahead: FULL_SCAN_READAHEAD,
                },
                builds: vec![BuildSpec {
                    source: ParallelSource::Heap {
                        heap: Arc::clone(&build),
                        predicate: Predicate::True,
                        readahead: FULL_SCAN_READAHEAD,
                    },
                    stages: vec![StageSpec::Filter(residual.clone())],
                    right_col: 1,
                    left_col: 1,
                    ty: JoinType::Inner,
                    partitions: BUILD_PARTITIONS,
                    mem_bytes: smooth_executor::mem_budget_bytes(),
                    open_at: 0,
                    open_order: 0,
                }],
                stages: vec![StageSpec::Probe(0)],
                sink: SinkSpec::Collect,
                storage: s_par.clone(),
                morsel_rows: smooth_executor::batch_size(),
            };
            let got = run_pipeline(pipeline, workers).unwrap();
            assert_equal_runs(
                (&expected, &s_serial),
                (&got, &s_par),
                &format!("staged build, {workers} workers"),
            )?;
        }
    }
}
