//! Property tests for the executor: join operators must agree with a
//! nested-loop oracle for arbitrary inputs, every access path must
//! return the same multiset as a filtered full scan, and the batched and
//! columnar iterator protocols must produce the exact row sequence of the
//! row-at-a-time protocol for every operator — including with selection
//! vectors active and with all three protocols interleaved on one stream.

use std::sync::Arc;

use proptest::prelude::*;
use smooth_executor::sort::SortKey;
use smooth_executor::{
    collect_rows, collect_rows_volcano, operator::ValuesOp, AggFunc, Filter, FullTableScan,
    HashAggregate, HashJoin, IndexScan, JoinType, MergeJoin, NestedLoopJoin, Operator, Predicate,
    Project, Sort, SortScan,
};
use smooth_index::BTreeIndex;
use smooth_storage::{CpuCosts, DeviceProfile, HeapFile, HeapLoader, Storage, StorageConfig};
use smooth_types::{Column, DataType, Row, Schema, Value};

/// Drain an operator through `next_batch(max)` only.
fn collect_batched(op: &mut dyn Operator, max: usize) -> Vec<Row> {
    op.open().unwrap();
    let mut rows = Vec::new();
    while let Some(batch) = op.next_batch(max).unwrap() {
        assert!(!batch.is_empty(), "empty batch violates the protocol");
        assert!(batch.len() <= max, "batch exceeds max");
        rows.extend(batch.into_rows());
    }
    assert!(op.next_batch(max).unwrap().is_none(), "None must be sticky");
    op.close().unwrap();
    rows
}

/// Drain an operator through `next_columns(max)` only, checking the
/// columnar batch contract.
fn collect_columnar(op: &mut dyn Operator, max: usize) -> Vec<Row> {
    op.open().unwrap();
    let mut rows = Vec::new();
    while let Some(batch) = op.next_columns(max).unwrap() {
        assert!(!batch.is_empty(), "empty columnar batch violates the protocol");
        assert!(batch.len() <= max, "columnar batch exceeds max");
        rows.extend(batch.into_rows());
    }
    assert!(op.next_columns(max).unwrap().is_none(), "None must be sticky");
    op.close().unwrap();
    rows
}

/// Drain an operator rotating `next()`, `next_batch(max)` and
/// `next_columns(max)` calls — all three protocols share one stream and
/// must compose.
fn collect_interleaved(op: &mut dyn Operator, max: usize) -> Vec<Row> {
    op.open().unwrap();
    let mut rows = Vec::new();
    'outer: while let Some(row) = op.next().unwrap() {
        rows.push(row);
        match op.next_batch(max).unwrap() {
            Some(batch) => rows.extend(batch.into_rows()),
            None => break 'outer,
        }
        match op.next_columns(max).unwrap() {
            Some(batch) => rows.extend(batch.into_rows()),
            None => break 'outer,
        }
    }
    op.close().unwrap();
    rows
}

/// The protocol-equivalence obligation: row-at-a-time, batched, columnar
/// and interleaved drains of (reopenable) `op` yield the identical
/// sequence.
fn assert_protocols_equivalent(op: &mut dyn Operator, max: usize) {
    let volcano = collect_rows_volcano(op).unwrap();
    assert_eq!(collect_batched(op, max), volcano, "batched ≠ row-at-a-time (max={max})");
    assert_eq!(collect_columnar(op, max), volcano, "columnar ≠ row-at-a-time (max={max})");
    assert_eq!(collect_interleaved(op, max), volcano, "interleaved ≠ row-at-a-time (max={max})");
}

fn storage() -> Storage {
    Storage::new(StorageConfig {
        device: DeviceProfile::custom("t", 1, 10),
        cpu: CpuCosts::default(),
        pool_pages: 16,
    })
}

fn two_col_schema(a: &str, b: &str) -> Schema {
    Schema::new(vec![Column::new(a, DataType::Int64), Column::new(b, DataType::Int64)]).unwrap()
}

fn values_op(a: &str, b: &str, rows: &[(i64, i64)]) -> Box<ValuesOp> {
    Box::new(ValuesOp::new(
        two_col_schema(a, b),
        rows.iter().map(|&(x, y)| Row::new(vec![Value::Int(x), Value::Int(y)])).collect(),
    ))
}

/// Nested-loop equi-join oracle over pairs.
fn join_oracle(left: &[(i64, i64)], right: &[(i64, i64)]) -> Vec<Vec<i64>> {
    let mut out = Vec::new();
    for &(lk, lv) in left {
        for &(rk, rv) in right {
            if lk == rk {
                out.push(vec![lk, lv, rk, rv]);
            }
        }
    }
    out.sort();
    out
}

fn canonical(rows: Vec<Row>) -> Vec<Vec<i64>> {
    let mut v: Vec<Vec<i64>> =
        rows.iter().map(|r| r.values().iter().map(|x| x.as_int().unwrap()).collect()).collect();
    v.sort();
    v
}

proptest! {
    #[test]
    fn hash_and_merge_joins_match_oracle(
        left in proptest::collection::vec((0i64..20, any::<i64>()), 0..60),
        right in proptest::collection::vec((0i64..20, any::<i64>()), 0..60),
    ) {
        let expected = join_oracle(&left, &right);
        let mut hj = HashJoin::new(
            values_op("lk", "lv", &left),
            values_op("rk", "rv", &right),
            0,
            0,
            JoinType::Inner,
            storage(),
        );
        prop_assert_eq!(canonical(collect_rows(&mut hj).unwrap()), expected.clone());
        let mut ls = left.clone();
        ls.sort();
        let mut rs = right.clone();
        rs.sort();
        let mut mj = MergeJoin::new(
            values_op("lk", "lv", &ls),
            values_op("rk", "rv", &rs),
            0,
            0,
            storage(),
        );
        prop_assert_eq!(canonical(collect_rows(&mut mj).unwrap()), expected);
    }

    #[test]
    fn semi_join_is_distinct_left_matches(
        left in proptest::collection::vec((0i64..15, 0i64..5), 0..40),
        right in proptest::collection::vec((0i64..15, 0i64..5), 0..40),
    ) {
        let mut hj = HashJoin::new(
            values_op("lk", "lv", &left),
            values_op("rk", "rv", &right),
            0,
            0,
            JoinType::LeftSemi,
            storage(),
        );
        let got = canonical(collect_rows(&mut hj).unwrap());
        let mut expected: Vec<Vec<i64>> = left
            .iter()
            .filter(|(lk, _)| right.iter().any(|(rk, _)| rk == lk))
            .map(|&(k, v)| vec![k, v])
            .collect();
        expected.sort();
        prop_assert_eq!(got, expected);
    }

    /// All three scan paths return the same multiset as the predicate
    /// applied row-by-row, for arbitrary data and ranges.
    #[test]
    fn scan_paths_agree_with_row_filter(
        keys in proptest::collection::vec(0i64..100, 1..600),
        lo in 0i64..100,
        width in 0i64..110,
    ) {
        let schema = two_col_schema("c0", "c1");
        let mut loader = HeapLoader::new_mem("t", schema);
        for (i, &k) in keys.iter().enumerate() {
            loader.push(&Row::new(vec![Value::Int(i as i64), Value::Int(k)])).unwrap();
        }
        let heap: Arc<HeapFile> = Arc::new(loader.finish().unwrap());
        let index = Arc::new(BTreeIndex::build_from_heap("i", &heap, 1).unwrap());
        let s = storage();
        let hi = lo + width;
        let expected: Vec<Vec<i64>> = {
            let mut v: Vec<Vec<i64>> = keys
                .iter()
                .enumerate()
                .filter(|(_, &k)| k >= lo && k < hi)
                .map(|(i, &k)| vec![i as i64, k])
                .collect();
            v.sort();
            v
        };
        let mut full = FullTableScan::new(
            Arc::clone(&heap),
            s.clone(),
            Predicate::int_half_open(1, lo, hi),
        );
        prop_assert_eq!(canonical(collect_rows(&mut full).unwrap()), expected.clone());
        let mut is = IndexScan::new(
            Arc::clone(&heap),
            Arc::clone(&index),
            s.clone(),
            std::ops::Bound::Included(lo),
            std::ops::Bound::Excluded(hi),
            Predicate::True,
        );
        prop_assert_eq!(canonical(collect_rows(&mut is).unwrap()), expected.clone());
        let mut ss = SortScan::new(
            heap,
            index,
            s,
            std::ops::Bound::Included(lo),
            std::ops::Bound::Excluded(hi),
            Predicate::True,
        );
        prop_assert_eq!(canonical(collect_rows(&mut ss).unwrap()), expected);
    }

    /// `next_batch` ≡ `next` for every access path, for arbitrary data,
    /// ranges, residuals and batch sizes.
    #[test]
    fn scan_batch_protocol_equals_row_protocol(
        keys in proptest::collection::vec(0i64..100, 1..500),
        lo in 0i64..100,
        width in 0i64..110,
        residual_hi in 0i64..600,
        max in 1usize..80,
    ) {
        let schema = two_col_schema("c0", "c1");
        let mut loader = HeapLoader::new_mem("t", schema);
        for (i, &k) in keys.iter().enumerate() {
            loader.push(&Row::new(vec![Value::Int(i as i64), Value::Int(k)])).unwrap();
        }
        let heap: Arc<HeapFile> = Arc::new(loader.finish().unwrap());
        let index = Arc::new(BTreeIndex::build_from_heap("i", &heap, 1).unwrap());
        let s = storage();
        let hi = lo + width;
        let residual = Predicate::int_lt(0, residual_hi);
        let mut full = FullTableScan::new(
            Arc::clone(&heap),
            s.clone(),
            Predicate::and(vec![Predicate::int_half_open(1, lo, hi), residual.clone()]),
        );
        assert_protocols_equivalent(&mut full, max);
        let mut is = IndexScan::new(
            Arc::clone(&heap),
            Arc::clone(&index),
            s.clone(),
            std::ops::Bound::Included(lo),
            std::ops::Bound::Excluded(hi),
            residual.clone(),
        );
        assert_protocols_equivalent(&mut is, max);
        let mut ss = SortScan::new(
            Arc::clone(&heap),
            Arc::clone(&index),
            s.clone(),
            std::ops::Bound::Included(lo),
            std::ops::Bound::Excluded(hi),
            residual.clone(),
        );
        assert_protocols_equivalent(&mut ss, max);
        for ty in [JoinType::Inner, JoinType::LeftSemi] {
            let outer_rows: Vec<(i64, i64)> =
                (0..40).map(|i| (i, (i * 13) % 120)).collect();
            let mut inlj = smooth_executor::IndexNestedLoopJoin::new(
                values_op("a", "fk", &outer_rows),
                1,
                Arc::clone(&heap),
                Arc::clone(&index),
                residual.clone(),
                ty,
                s.clone(),
            );
            assert_protocols_equivalent(&mut inlj, max);
        }
    }

    /// `next_batch` ≡ `next` for the relational operators (filter,
    /// projection, sort, aggregation, all joins) over arbitrary inputs.
    #[test]
    fn relational_batch_protocol_equals_row_protocol(
        left in proptest::collection::vec((0i64..25, -50i64..50), 0..80),
        right in proptest::collection::vec((0i64..25, -50i64..50), 0..80),
        max in 1usize..40,
    ) {
        let mk_left = || values_op("lk", "lv", &left);
        let mk_right = || values_op("rk", "rv", &right);
        let mut filter = Filter::new(mk_left(), Predicate::int_ge(1, 0));
        assert_protocols_equivalent(&mut filter, max);
        let mut project = Project::new(mk_left(), vec![1, 0]).unwrap();
        assert_protocols_equivalent(&mut project, max);
        // Project above Filter: the columnar path carries an *active*
        // selection vector through the column pruning.
        let mut stacked = Project::new(
            Box::new(Filter::new(mk_left(), Predicate::int_ge(1, 0))),
            vec![1, 0],
        )
        .unwrap();
        assert_protocols_equivalent(&mut stacked, max);
        // Filter above Filter: selection vectors refine, never rebuild.
        let mut refined = Filter::new(
            Box::new(Filter::new(mk_left(), Predicate::int_ge(1, -25))),
            Predicate::int_lt(1, 25),
        );
        assert_protocols_equivalent(&mut refined, max);
        let mut sort = Sort::new(mk_left(), storage(), vec![SortKey::asc(0), SortKey::desc(1)]);
        assert_protocols_equivalent(&mut sort, max);
        let mut agg = HashAggregate::new(
            mk_left(),
            vec![0],
            vec![AggFunc::CountStar, AggFunc::Sum(1), AggFunc::Min(1)],
            storage(),
        )
        .unwrap();
        assert_protocols_equivalent(&mut agg, max);
        for ty in [JoinType::Inner, JoinType::LeftSemi] {
            let mut hj = HashJoin::new(mk_left(), mk_right(), 0, 0, ty, storage());
            assert_protocols_equivalent(&mut hj, max);
            let mut nlj =
                NestedLoopJoin::new(mk_left(), mk_right(), Predicate::int_ge(1, 0), ty, storage());
            assert_protocols_equivalent(&mut nlj, max);
        }
        let mut ls = left.clone();
        ls.sort();
        let mut rs = right.clone();
        rs.sort();
        let mut mj =
            MergeJoin::new(values_op("lk", "lv", &ls), values_op("rk", "rv", &rs), 0, 0, storage());
        assert_protocols_equivalent(&mut mj, max);
    }
}
