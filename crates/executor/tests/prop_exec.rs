//! Property tests for the executor: join operators must agree with a
//! nested-loop oracle for arbitrary inputs, and every access path must
//! return the same multiset as a filtered full scan.

use std::sync::Arc;

use proptest::prelude::*;
use smooth_executor::{
    collect_rows, operator::ValuesOp, FullTableScan, HashJoin, IndexScan, JoinType, MergeJoin,
    Predicate, SortScan,
};
use smooth_index::BTreeIndex;
use smooth_storage::{CpuCosts, DeviceProfile, HeapFile, HeapLoader, Storage, StorageConfig};
use smooth_types::{Column, DataType, Row, Schema, Value};

fn storage() -> Storage {
    Storage::new(StorageConfig {
        device: DeviceProfile::custom("t", 1, 10),
        cpu: CpuCosts::default(),
        pool_pages: 16,
    })
}

fn two_col_schema(a: &str, b: &str) -> Schema {
    Schema::new(vec![Column::new(a, DataType::Int64), Column::new(b, DataType::Int64)]).unwrap()
}

fn values_op(a: &str, b: &str, rows: &[(i64, i64)]) -> Box<ValuesOp> {
    Box::new(ValuesOp::new(
        two_col_schema(a, b),
        rows.iter().map(|&(x, y)| Row::new(vec![Value::Int(x), Value::Int(y)])).collect(),
    ))
}

/// Nested-loop equi-join oracle over pairs.
fn join_oracle(left: &[(i64, i64)], right: &[(i64, i64)]) -> Vec<Vec<i64>> {
    let mut out = Vec::new();
    for &(lk, lv) in left {
        for &(rk, rv) in right {
            if lk == rk {
                out.push(vec![lk, lv, rk, rv]);
            }
        }
    }
    out.sort();
    out
}

fn canonical(rows: Vec<Row>) -> Vec<Vec<i64>> {
    let mut v: Vec<Vec<i64>> =
        rows.iter().map(|r| r.values().iter().map(|x| x.as_int().unwrap()).collect()).collect();
    v.sort();
    v
}

proptest! {
    #[test]
    fn hash_and_merge_joins_match_oracle(
        left in proptest::collection::vec((0i64..20, any::<i64>()), 0..60),
        right in proptest::collection::vec((0i64..20, any::<i64>()), 0..60),
    ) {
        let expected = join_oracle(&left, &right);
        let mut hj = HashJoin::new(
            values_op("lk", "lv", &left),
            values_op("rk", "rv", &right),
            0,
            0,
            JoinType::Inner,
            storage(),
        );
        prop_assert_eq!(canonical(collect_rows(&mut hj).unwrap()), expected.clone());
        let mut ls = left.clone();
        ls.sort();
        let mut rs = right.clone();
        rs.sort();
        let mut mj = MergeJoin::new(
            values_op("lk", "lv", &ls),
            values_op("rk", "rv", &rs),
            0,
            0,
            storage(),
        );
        prop_assert_eq!(canonical(collect_rows(&mut mj).unwrap()), expected);
    }

    #[test]
    fn semi_join_is_distinct_left_matches(
        left in proptest::collection::vec((0i64..15, 0i64..5), 0..40),
        right in proptest::collection::vec((0i64..15, 0i64..5), 0..40),
    ) {
        let mut hj = HashJoin::new(
            values_op("lk", "lv", &left),
            values_op("rk", "rv", &right),
            0,
            0,
            JoinType::LeftSemi,
            storage(),
        );
        let got = canonical(collect_rows(&mut hj).unwrap());
        let mut expected: Vec<Vec<i64>> = left
            .iter()
            .filter(|(lk, _)| right.iter().any(|(rk, _)| rk == lk))
            .map(|&(k, v)| vec![k, v])
            .collect();
        expected.sort();
        prop_assert_eq!(got, expected);
    }

    /// All three scan paths return the same multiset as the predicate
    /// applied row-by-row, for arbitrary data and ranges.
    #[test]
    fn scan_paths_agree_with_row_filter(
        keys in proptest::collection::vec(0i64..100, 1..600),
        lo in 0i64..100,
        width in 0i64..110,
    ) {
        let schema = two_col_schema("c0", "c1");
        let mut loader = HeapLoader::new_mem("t", schema);
        for (i, &k) in keys.iter().enumerate() {
            loader.push(&Row::new(vec![Value::Int(i as i64), Value::Int(k)])).unwrap();
        }
        let heap: Arc<HeapFile> = Arc::new(loader.finish().unwrap());
        let index = Arc::new(BTreeIndex::build_from_heap("i", &heap, 1).unwrap());
        let s = storage();
        let hi = lo + width;
        let expected: Vec<Vec<i64>> = {
            let mut v: Vec<Vec<i64>> = keys
                .iter()
                .enumerate()
                .filter(|(_, &k)| k >= lo && k < hi)
                .map(|(i, &k)| vec![i as i64, k])
                .collect();
            v.sort();
            v
        };
        let mut full = FullTableScan::new(
            Arc::clone(&heap),
            s.clone(),
            Predicate::int_half_open(1, lo, hi),
        );
        prop_assert_eq!(canonical(collect_rows(&mut full).unwrap()), expected.clone());
        let mut is = IndexScan::new(
            Arc::clone(&heap),
            Arc::clone(&index),
            s.clone(),
            std::ops::Bound::Included(lo),
            std::ops::Bound::Excluded(hi),
            Predicate::True,
        );
        prop_assert_eq!(canonical(collect_rows(&mut is).unwrap()), expected.clone());
        let mut ss = SortScan::new(
            heap,
            index,
            s,
            std::ops::Bound::Included(lo),
            std::ops::Bound::Excluded(hi),
            Predicate::True,
        );
        prop_assert_eq!(canonical(collect_rows(&mut ss).unwrap()), expected);
    }
}
