//! SLA-driven morphing: use the cost model to guarantee an execution-time
//! bound (Section III-C, Fig. 7b).
//!
//! The operator runs as a traditional index scan — the cheapest choice if
//! the optimizer was right — but the cost model precomputes the tuple count
//! beyond which even the worst case (100% selectivity) could violate the
//! SLA. At that point it morphs greedily toward a full scan, keeping the
//! bound.
//!
//! ```sh
//! cargo run --release --example sla_guard
//! ```

use smoothscan::prelude::*;
use smoothscan::workload::micro;

fn main() {
    let mut db = Database::new(StorageConfig::default());
    micro::install(&mut db, 200_000, 11).unwrap();
    let heap = &db.table(micro::TABLE).unwrap().heap;
    let model = CostModel::new(
        TableGeometry::new(heap.schema().estimated_tuple_width(16) as u64, heap.tuple_count()),
        DeviceProfile::hdd(),
    );

    // SLA: at most twice the full-scan time, whatever the selectivity.
    let full_scan_s = model.fs_cost_ns() / 1e9;
    let sla_ns = (2.0 * model.fs_cost_ns()) as u64;
    let switch_at = model.sla_trigger_cardinality(sla_ns as f64);
    println!("full scan takes {full_scan_s:.2}s → SLA = {:.2}s", 2.0 * full_scan_s);
    println!("cost model: morph after {switch_at} index tuples to stay under the SLA\n");

    println!("{:<8} {:>12} {:>12} {:>10}", "sel %", "index (s)", "sla-ss (s)", "bound ok");
    for sel in [0.0001, 0.001, 0.01, 0.10, 0.50, 1.0] {
        let index =
            db.run(&micro::query(sel, false, AccessPathChoice::ForceIndex)).unwrap().stats.secs();
        let guarded = db
            .run(&micro::query(
                sel,
                false,
                AccessPathChoice::Smooth(
                    SmoothScanConfig::eager_elastic()
                        .with_trigger(Trigger::SlaDriven { bound_ns: sla_ns }),
                ),
            ))
            .unwrap()
            .stats
            .secs();
        println!(
            "{:<8} {:>12.3} {:>12.3} {:>10}",
            sel * 100.0,
            index,
            guarded,
            if guarded <= 2.0 * full_scan_s * 1.05 { "yes" } else { "NO" }
        );
    }
    println!(
        "\nThe plain index scan blows through the SLA as selectivity grows;\n\
         the SLA-driven Smooth Scan switches to greedy morphing in time, at\n\
         the cost of a bounded detour when the estimate was actually fine."
    );
}
