//! Quickstart: load a table, create an index, and watch Smooth Scan beat a
//! mis-chosen access path without any statistics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use smoothscan::prelude::*;

fn main() {
    // An engine with the paper's HDD model: a random page transfer costs
    // 10× a sequential one — the asymmetry all access-path trouble stems from.
    let mut db = Database::new(StorageConfig::default());

    // A 200k-row table; `key` is uniform over [0, 1000).
    let schema = Schema::new(vec![
        Column::new("id", DataType::Int64),
        Column::new("key", DataType::Int64),
        Column::new("payload", DataType::Text),
    ])
    .unwrap();
    db.load_table(
        "events",
        schema,
        (0..200_000i64).map(|i| {
            Row::new(vec![
                Value::Int(i),
                Value::Int((i.wrapping_mul(2654435761)) % 1000),
                Value::str("#".repeat(64)),
            ])
        }),
    )
    .unwrap();
    db.create_index("events", 1, "events_key").unwrap();

    // A query that actually selects 30% of the table. Imagine the optimizer
    // believed "a few rows" and picked the index scan...
    let pred = Predicate::int_half_open(1, 0, 300);
    println!("predicate: 0 <= key < 300 (true selectivity ≈ 30%)\n");
    println!("{:<28} {:>12} {:>12} {:>12}", "access path", "time (s)", "I/O reqs", "MB read");
    for (name, access) in [
        ("FullTableScan", AccessPathChoice::ForceFull),
        ("IndexScan (the mistake)", AccessPathChoice::ForceIndex),
        ("SortScan (bitmap)", AccessPathChoice::ForceSort),
        ("SmoothScan (no decision!)", AccessPathChoice::Smooth(SmoothScanConfig::eager_elastic())),
    ] {
        let plan = LogicalPlan::scan(ScanSpec::new("events", pred.clone()).with_access(access));
        let r = db.run(&plan).unwrap();
        println!(
            "{:<28} {:>12.3} {:>12} {:>12.1}",
            name,
            r.stats.secs(),
            r.stats.io.io_requests,
            r.stats.io.mb_read()
        );
    }

    println!(
        "\nSmooth Scan starts as an index scan, notices the density, and morphs\n\
         toward sequential behaviour — no statistics, no cliff, no 100x blowup."
    );
}
