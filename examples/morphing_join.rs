//! Beyond access paths: a join that morphs (Section IV-B).
//!
//! "By performing caching of additional (qualifying) tuples from the inner
//! input found along the way, INLJ morphs into a variant of Hash Join over
//! time, with the index used only when a tuple is not found in the cache."
//!
//! This example joins an orders stream against a lineitem-style inner
//! table through [`SmoothInnerPath`]: every page fetched for one probe is
//! harvested whole, so high-fan-out FK joins stop touching the disk long
//! before the outer side is exhausted.
//!
//! ```sh
//! cargo run --release --example morphing_join
//! ```

use std::sync::Arc;

use smoothscan::core::{SmoothIndexNestedLoopJoin, SmoothInnerPath};
use smoothscan::executor::{collect_rows, operator::ValuesOp, IndexNestedLoopJoin, JoinType};
use smoothscan::index::BTreeIndex;
use smoothscan::prelude::*;
use smoothscan::storage::HeapLoader;

fn main() {
    // Inner: 240k rows, 6 per key, keys scattered across pages (FK order
    // is unrelated to physical placement — the painful real-world case).
    let schema = Schema::new(vec![
        Column::new("fk", DataType::Int64),
        Column::new("amount", DataType::Int64),
        Column::new("pad", DataType::Text),
    ])
    .unwrap();
    let keys = 40_000i64;
    let mut loader = HeapLoader::new_mem("lineitems", schema);
    for rep in 0..6i64 {
        for j in 0..keys {
            let k = (j.wrapping_mul(7919) + rep * 13) % keys;
            loader
                .push(&Row::new(vec![
                    Value::Int(k),
                    Value::Int(rep * 100),
                    Value::str("·".repeat(40)),
                ]))
                .unwrap();
        }
    }
    let heap = Arc::new(loader.finish().unwrap());
    let index = Arc::new(BTreeIndex::build_from_heap("fk_idx", &heap, 0).unwrap());
    let storage_for = || Storage::new(StorageConfig { pool_pages: 64, ..StorageConfig::default() });
    println!(
        "inner: {} rows over {} pages; outer: every key probed twice\n",
        heap.tuple_count(),
        heap.page_count()
    );

    let outer_keys: Vec<i64> = (0..keys).chain(0..keys).collect();
    let outer = |storage: &Storage| -> Box<ValuesOp> {
        let _ = storage;
        let schema = Schema::new(vec![Column::new("k", DataType::Int64)]).unwrap();
        Box::new(ValuesOp::new(
            schema,
            outer_keys.iter().map(|&k| Row::new(vec![Value::Int(k)])).collect(),
        ))
    };

    // Plain INLJ: one (random) heap fetch per TID, forever.
    let s1 = storage_for();
    let mut plain = IndexNestedLoopJoin::new(
        outer(&s1),
        0,
        Arc::clone(&heap),
        Arc::clone(&index),
        Predicate::True,
        JoinType::Inner,
        s1.clone(),
    );
    let n1 = collect_rows(&mut plain).unwrap().len();
    let t1 = s1.clock().snapshot();
    let io1 = s1.io_snapshot();

    // Morphing INLJ: harvested pages never fetched again; after full
    // coverage the index is bypassed entirely.
    let s2 = storage_for();
    let inner = SmoothInnerPath::new(heap, index, s2.clone(), 0, Predicate::True);
    let mut morphing = SmoothIndexNestedLoopJoin::new(outer(&s2), 0, inner);
    let n2 = collect_rows(&mut morphing).unwrap().len();
    let t2 = s2.clock().snapshot();
    let io2 = s2.io_snapshot();
    let m = morphing.inner_metrics();

    assert_eq!(n1, n2);
    println!("{:<22} {:>10} {:>14} {:>12}", "join", "time (s)", "pages read", "rows");
    println!("{:<22} {:>10.2} {:>14} {:>12}", "plain INLJ", t1.total_secs(), io1.pages_read, n1);
    println!("{:<22} {:>10.2} {:>14} {:>12}", "morphing INLJ", t2.total_secs(), io2.pages_read, n2);
    println!(
        "\nmorphing stats: {} probes, {} served cache-only, fully morphed into a hash join: {}",
        m.probes, m.cache_only_probes, m.fully_morphed
    );
    println!(
        "speedup {:.1}x with {:.0}x less page traffic — the §IV-B \"morphable join\" payoff",
        t1.total_secs() / t2.total_secs(),
        io1.pages_read as f64 / io2.pages_read as f64
    );
}
