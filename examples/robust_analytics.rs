//! Robust analytics under broken statistics: the Fig. 1 / Q12 story, end
//! to end.
//!
//! A TPC-H-style database is "tuned" (indexes installed) but its LINEITEM
//! statistics are stale and correlation-blind. The optimizer flips to an
//! index-based plan that is catastrophically wrong — unless the scan is a
//! Smooth Scan, which needs no estimate at all.
//!
//! ```sh
//! cargo run --release --example robust_analytics
//! ```

use smoothscan::prelude::*;
use smoothscan::workload::tpch::{self, l, o, Scale};

fn q12_style_plan(access: AccessPathChoice) -> LogicalPlan {
    // Q12's shape: a correlated conjunction on lineitem, then a PK join.
    let pred = Predicate::And(vec![
        Predicate::int_half_open(l::RECEIPTDATE, 1095, 1460), // one year
        Predicate::StrIn { col: l::SHIPMODE, values: vec!["MAIL".into(), "SHIP".into()] },
        Predicate::IntColLt { left: l::COMMITDATE, right: l::RECEIPTDATE },
    ]);
    LogicalPlan::scan(ScanSpec::new("lineitem", pred).with_access(access))
        .join(
            LogicalPlan::scan(ScanSpec::new("orders", Predicate::True)),
            l::ORDERKEY,
            o::ORDERKEY,
            JoinType::Inner,
            JoinStrategy::Auto,
        )
        .aggregate(vec![l::WIDTH + o::ORDERPRIORITY], vec![AggFunc::CountStar])
}

fn main() {
    let mut db = Database::new(StorageConfig::default());
    tpch::install(&mut db, Scale { sf: 0.01, seed: 42 }).unwrap();
    tpch::gen::create_tuning_indexes(&mut db).unwrap();

    // Honest statistics: the optimizer keeps the full scan.
    let honest = db.run(&q12_style_plan(AccessPathChoice::Auto)).unwrap();
    println!(
        "honest stats, Auto plan     : {:>8.3}s  ({} rows)",
        honest.stats.secs(),
        honest.rows.len()
    );
    println!("  plan: {}\n", db.explain(&q12_style_plan(AccessPathChoice::Auto)).unwrap());

    // Stale stats: the optimizer now believes ~10 rows qualify.
    db.set_stats_quality("lineitem", StatsQuality::FixedCardinality(10)).unwrap();
    let fooled = db.run(&q12_style_plan(AccessPathChoice::Auto)).unwrap();
    println!(
        "stale stats, Auto plan      : {:>8.3}s  ({} rows)",
        fooled.stats.secs(),
        fooled.rows.len()
    );
    println!("  plan: {}\n", db.explain(&q12_style_plan(AccessPathChoice::Auto)).unwrap());

    // Same stale stats — but the scan is a Smooth Scan. The estimate is
    // irrelevant: the operator adapts to what it actually sees.
    let smooth_access = AccessPathChoice::Smooth(SmoothScanConfig::eager_elastic());
    let smooth = db.run(&q12_style_plan(smooth_access.clone())).unwrap();
    println!(
        "stale stats, Smooth Scan    : {:>8.3}s  ({} rows)",
        smooth.stats.secs(),
        smooth.rows.len()
    );
    println!("  plan: {}\n", db.explain(&q12_style_plan(smooth_access)).unwrap());

    let cliff = fooled.stats.secs() / honest.stats.secs();
    let saved = fooled.stats.secs() / smooth.stats.secs();
    println!(
        "the stale-statistics cliff cost {cliff:.0}x; Smooth Scan gives {saved:.0}x of it back"
    );
    assert_eq!(honest.rows.len(), smooth.rows.len());
}
