//! Skew as an opportunity: the Elastic policy's two-way morphing
//! (Section VI-D, Fig. 8).
//!
//! The table has a dense head — the first 1% of pages contain nearly all
//! matches — then a near-empty tail. One fixed strategy cannot serve both
//! regions: a full scan wastes the tail, an index scan wastes the head.
//! Elastic Smooth Scan grows its morphing region through the head and
//! shrinks it back through the tail.
//!
//! ```sh
//! cargo run --release --example skew_adaptivity
//! ```

use smoothscan::prelude::*;
use smoothscan::workload::skew;

fn main() {
    let mut db = Database::new(StorageConfig::default());
    skew::install(&mut db, 400_000, 7).unwrap();
    let heap_file = db.table(skew::TABLE).unwrap().heap.file_id();
    let total_pages = db.table(skew::TABLE).unwrap().heap.page_count();
    println!("table: 400k rows over {total_pages} pages; query: c2 = 0 (sel ≈ 1%, dense head)\n");

    println!(
        "{:<22} {:>10} {:>16} {:>14}",
        "access path", "time (s)", "distinct pages", "max region"
    );
    for (name, policy) in [
        ("SI Smooth Scan", PolicyKind::SelectivityIncrease),
        ("Elastic Smooth Scan", PolicyKind::Elastic),
    ] {
        db.storage().reset_metrics();
        let spec = ScanSpec::new(skew::TABLE, skew::predicate());
        let mut scan = db
            .build_smooth_scan(&spec, SmoothScanConfig::eager_elastic().with_policy(policy))
            .unwrap();
        let result = db.run_operator(&mut scan).unwrap();
        let m = scan.metrics();
        println!(
            "{:<22} {:>10.4} {:>16} {:>14}",
            name,
            result.stats.secs(),
            db.storage().distinct_pages_for(heap_file),
            m.max_region_pages,
        );
    }
    for (name, access) in [
        ("FullTableScan", AccessPathChoice::ForceFull),
        ("IndexScan", AccessPathChoice::ForceIndex),
    ] {
        db.storage().reset_metrics();
        let r = db.run(&skew::query(access)).unwrap();
        println!(
            "{:<22} {:>10.4} {:>16} {:>14}",
            name,
            r.stats.secs(),
            db.storage().distinct_pages_for(heap_file),
            "-"
        );
    }

    println!(
        "\nElastic shrinks back to single-page probes after the dense head;\n\
         SI keeps the large morphing region it learned there and drags in\n\
         pages the query never needed (Fig. 8's 56x page blowup at paper scale)."
    );
}
